#include "llm/templates.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qcgen::llm {

using qasm::CircuitDecl;
using qasm::Expr;
using qasm::ExprPtr;
using qasm::GateStmt;
using qasm::IfStmt;
using qasm::Import;
using qasm::Program;
using qasm::RegRef;
using qasm::Stmt;

qasm::Stmt make_gate(std::string name, const std::vector<std::size_t>& qubits,
                     const std::vector<double>& params,
                     const std::string& qreg) {
  GateStmt g;
  g.name = std::move(name);
  for (double p : params) g.params.push_back(Expr::make_number(p));
  for (std::size_t q : qubits) g.operands.push_back(RegRef{qreg, q, 0});
  return Stmt{std::move(g)};
}

qasm::Stmt make_pi_gate(std::string name, const std::vector<std::size_t>& qubits,
                        std::vector<ExprPtr> params,
                        const std::string& qreg) {
  GateStmt g;
  g.name = std::move(name);
  g.params = std::move(params);
  for (std::size_t q : qubits) g.operands.push_back(RegRef{qreg, q, 0});
  return Stmt{std::move(g)};
}

qasm::Stmt make_measure(std::size_t qubit, std::size_t clbit) {
  return Stmt{qasm::MeasureStmt{RegRef{"q", qubit, 0}, RegRef{"c", clbit, 0}, 0}};
}

qasm::Stmt make_measure_all() { return Stmt{qasm::MeasureAllStmt{0}}; }

qasm::Stmt make_barrier() { return Stmt{qasm::BarrierStmt{0}}; }

qasm::Stmt make_if(std::size_t clbit, bool value, Stmt body) {
  auto node = std::make_shared<IfStmt>();
  node->clbit = RegRef{"c", clbit, 0};
  node->value = value;
  node->body = std::move(body);
  return Stmt{std::move(node)};
}

ExprPtr pi_fraction(int num, int den) {
  require(den != 0, "pi_fraction: zero denominator");
  ExprPtr e = Expr::make_pi();
  if (num != 1) {
    e = Expr::make_binary(Expr::Kind::kMul,
                          Expr::make_number(static_cast<double>(std::abs(num))),
                          std::move(e));
  }
  if (den != 1) {
    e = Expr::make_binary(Expr::Kind::kDiv, std::move(e),
                          Expr::make_number(static_cast<double>(den)));
  }
  if (num < 0) e = Expr::make_unary(Expr::Kind::kNeg, std::move(e));
  return e;
}

namespace {

Program wrap(std::size_t num_qubits, std::size_t num_clbits,
             std::vector<Stmt> body) {
  Program prog;
  prog.imports.push_back(Import{"qiskit", 1});
  prog.imports.push_back(Import{"qiskit.circuit", 2});
  CircuitDecl decl;
  decl.name = "main";
  decl.num_qubits = num_qubits;
  decl.num_clbits = num_clbits;
  decl.body = std::move(body);
  prog.circuits.push_back(std::move(decl));
  return prog;
}

std::vector<Stmt> qft_body(int n, bool inverse) {
  std::vector<Stmt> body;
  if (!inverse) {
    for (int j = n - 1; j >= 0; --j) {
      body.push_back(make_gate("h", {static_cast<std::size_t>(j)}));
      for (int k = j - 1; k >= 0; --k) {
        body.push_back(make_pi_gate(
            "cp",
            {static_cast<std::size_t>(k), static_cast<std::size_t>(j)},
            {pi_fraction(1, 1 << (j - k))}));
      }
    }
    for (int q = 0; q < n / 2; ++q) {
      body.push_back(make_gate("swap", {static_cast<std::size_t>(q),
                                        static_cast<std::size_t>(n - 1 - q)}));
    }
  } else {
    for (int q = 0; q < n / 2; ++q) {
      body.push_back(make_gate("swap", {static_cast<std::size_t>(q),
                                        static_cast<std::size_t>(n - 1 - q)}));
    }
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < j; ++k) {
        body.push_back(make_pi_gate(
            "cp",
            {static_cast<std::size_t>(k), static_cast<std::size_t>(j)},
            {pi_fraction(-1, 1 << (j - k))}));
      }
      body.push_back(make_gate("h", {static_cast<std::size_t>(j)}));
    }
  }
  return body;
}

void append(std::vector<Stmt>& dst, std::vector<Stmt> src) {
  for (auto& s : src) dst.push_back(std::move(s));
}

}  // namespace

Program gold_program(const TaskSpec& task) {
  std::vector<Stmt> body;
  switch (task.algorithm) {
    case AlgorithmId::kBellPair: {
      body.push_back(make_gate("h", {0}));
      body.push_back(make_gate("cx", {0, 1}));
      body.push_back(make_measure_all());
      return wrap(2, 2, std::move(body));
    }
    case AlgorithmId::kGhz: {
      const int n = task.iparam("n", 3);
      require(n >= 2 && n <= 8, "ghz template: n in 2..8");
      body.push_back(make_gate("h", {0}));
      for (int q = 1; q < n; ++q) {
        body.push_back(make_gate("cx", {static_cast<std::size_t>(q - 1),
                                        static_cast<std::size_t>(q)}));
      }
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kSuperposition:
    case AlgorithmId::kRandomNumber: {
      const int n = task.iparam("n", 3);
      require(n >= 1 && n <= 10, "superposition template: n in 1..10");
      for (int q = 0; q < n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kSingleQubitRotation: {
      const double theta = task.param("theta", 0.7);
      body.push_back(make_gate("ry", {0}, {theta}));
      body.push_back(make_measure(0, 0));
      return wrap(1, 1, std::move(body));
    }
    case AlgorithmId::kBitflipEncoding: {
      const bool one = task.iparam("value", 0) != 0;
      if (one) body.push_back(make_gate("x", {0}));
      body.push_back(make_gate("cx", {0, 1}));
      body.push_back(make_gate("cx", {0, 2}));
      body.push_back(make_measure_all());
      return wrap(3, 3, std::move(body));
    }
    case AlgorithmId::kSwapTest: {
      const double t1 = task.param("theta1", 0.5);
      const double t2 = task.param("theta2", 0.5);
      body.push_back(make_gate("ry", {1}, {t1}));
      body.push_back(make_gate("ry", {2}, {t2}));
      body.push_back(make_gate("h", {0}));
      body.push_back(make_gate("cswap", {0, 1, 2}));
      body.push_back(make_gate("h", {0}));
      body.push_back(make_measure(0, 0));
      return wrap(3, 1, std::move(body));
    }
    case AlgorithmId::kPhaseKickback: {
      body.push_back(make_gate("x", {1}));
      body.push_back(make_gate("h", {1}));
      body.push_back(make_gate("h", {0}));
      body.push_back(make_gate("cx", {0, 1}));
      body.push_back(make_gate("h", {0}));
      body.push_back(make_measure(0, 0));
      return wrap(2, 1, std::move(body));
    }
    case AlgorithmId::kDeutschJozsa: {
      const int n = task.iparam("n", 3);
      const bool constant = task.iparam("constant", 1) != 0;
      require(n >= 1 && n <= 6, "deutsch_jozsa template: n in 1..6");
      const auto anc = static_cast<std::size_t>(n);
      body.push_back(make_gate("x", {anc}));
      for (int q = 0; q <= n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      body.push_back(make_barrier());
      if (!constant) {
        for (int q = 0; q < n; ++q) {
          body.push_back(make_gate("cx", {static_cast<std::size_t>(q), anc}));
        }
      }
      body.push_back(make_barrier());
      for (int q = 0; q < n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      for (int q = 0; q < n; ++q) {
        body.push_back(make_measure(static_cast<std::size_t>(q),
                                    static_cast<std::size_t>(q)));
      }
      return wrap(static_cast<std::size_t>(n + 1), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kBernsteinVazirani: {
      const int n = task.iparam("n", 3);
      const int secret = task.iparam("secret", 5);
      require(n >= 1 && n <= 6, "bernstein_vazirani template: n in 1..6");
      require(secret >= 0 && secret < (1 << n), "bv: secret out of range");
      const auto anc = static_cast<std::size_t>(n);
      body.push_back(make_gate("x", {anc}));
      for (int q = 0; q <= n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      body.push_back(make_barrier());
      for (int q = 0; q < n; ++q) {
        if ((secret >> q) & 1) {
          body.push_back(make_gate("cx", {static_cast<std::size_t>(q), anc}));
        }
      }
      body.push_back(make_barrier());
      for (int q = 0; q < n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      for (int q = 0; q < n; ++q) {
        body.push_back(make_measure(static_cast<std::size_t>(q),
                                    static_cast<std::size_t>(q)));
      }
      return wrap(static_cast<std::size_t>(n + 1), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kGrover: {
      const int n = task.iparam("n", 2);
      const int marked = task.iparam("marked", 3);
      const int iterations = task.iparam("iterations", 1);
      require(n >= 2 && n <= 3, "grover template: n in 2..3");
      require(marked >= 0 && marked < (1 << n), "grover: marked range");
      const auto mcz = [&](std::vector<Stmt>& b) {
        if (n == 2) {
          b.push_back(make_gate("cz", {0, 1}));
        } else {
          b.push_back(make_gate("h", {2}));
          b.push_back(make_gate("ccx", {0, 1, 2}));
          b.push_back(make_gate("h", {2}));
        }
      };
      for (int q = 0; q < n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      for (int it = 0; it < iterations; ++it) {
        for (int q = 0; q < n; ++q) {
          if (!((marked >> q) & 1)) {
            body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
          }
        }
        mcz(body);
        for (int q = 0; q < n; ++q) {
          if (!((marked >> q) & 1)) {
            body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
          }
        }
        for (int q = 0; q < n; ++q) {
          body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
        }
        for (int q = 0; q < n; ++q) {
          body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
        }
        mcz(body);
        for (int q = 0; q < n; ++q) {
          body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
        }
        for (int q = 0; q < n; ++q) {
          body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
        }
      }
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kQft: {
      const int n = task.iparam("n", 3);
      const int input = task.iparam("input", 1);
      require(n >= 1 && n <= 6, "qft template: n in 1..6");
      require(input >= 0 && input < (1 << n), "qft: input out of range");
      for (int q = 0; q < n; ++q) {
        if ((input >> q) & 1) {
          body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
        }
      }
      append(body, qft_body(n, /*inverse=*/false));
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kInverseQft: {
      const int n = task.iparam("n", 3);
      const int input = task.iparam("input", 1);
      require(n >= 1 && n <= 6, "inverse_qft template: n in 1..6");
      for (int q = 0; q < n; ++q) {
        if ((input >> q) & 1) {
          body.push_back(make_gate("x", {static_cast<std::size_t>(q)}));
        }
      }
      append(body, qft_body(n, /*inverse=*/false));
      body.push_back(make_barrier());
      append(body, qft_body(n, /*inverse=*/true));
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kShorPeriodFinding: {
      // Counting register q0..q2, work register q3..q6 initialised to 1.
      // U: y -> 7y mod 15 = complement(rotate-right(y)); U^2: y -> 4y
      // mod 15 = rotate-left-2; U^4 = identity.
      body.push_back(make_gate("x", {3}));
      for (std::size_t q : {0, 1, 2}) {
        body.push_back(make_gate("h", {q}));
      }
      body.push_back(make_barrier());
      // Controlled-U on counting bit 0.
      body.push_back(make_gate("cswap", {0, 5, 6}));
      body.push_back(make_gate("cswap", {0, 4, 5}));
      body.push_back(make_gate("cswap", {0, 3, 4}));
      for (std::size_t w : {3, 4, 5, 6}) {
        body.push_back(make_gate("cx", {0, w}));
      }
      // Controlled-U^2 on counting bit 1.
      body.push_back(make_gate("cswap", {1, 3, 5}));
      body.push_back(make_gate("cswap", {1, 4, 6}));
      // Controlled-U^4 on counting bit 2 is the identity.
      body.push_back(make_barrier());
      // Inverse QFT over the counting register.
      append(body, qft_body(3, /*inverse=*/true));
      for (std::size_t q : {0, 1, 2}) {
        body.push_back(make_measure(q, q));
      }
      return wrap(7, 3, std::move(body));
    }
    case AlgorithmId::kTeleportation: {
      const double theta = task.param("theta", 1.1);
      body.push_back(make_gate("ry", {0}, {theta}));
      body.push_back(make_gate("h", {1}));
      body.push_back(make_gate("cx", {1, 2}));
      body.push_back(make_barrier());
      body.push_back(make_gate("cx", {0, 1}));
      body.push_back(make_gate("h", {0}));
      body.push_back(make_measure(0, 0));
      body.push_back(make_measure(1, 1));
      body.push_back(make_if(1, true, make_gate("x", {2})));
      body.push_back(make_if(0, true, make_gate("z", {2})));
      body.push_back(make_measure(2, 2));
      return wrap(3, 3, std::move(body));
    }
    case AlgorithmId::kQuantumWalk: {
      const int steps = task.iparam("steps", 2);
      require(steps >= 1 && steps <= 6, "quantum_walk template: steps 1..6");
      // Coin q0, position q1..q2 (4-site cycle).
      body.push_back(make_gate("h", {0}));
      body.push_back(make_gate("s", {0}));
      for (int s = 0; s < steps; ++s) {
        body.push_back(make_gate("h", {0}));
        body.push_back(make_gate("ccx", {0, 1, 2}));
        body.push_back(make_gate("cx", {0, 1}));
        body.push_back(make_gate("x", {0}));
        body.push_back(make_gate("x", {1}));
        body.push_back(make_gate("ccx", {0, 1, 2}));
        body.push_back(make_gate("x", {1}));
        body.push_back(make_gate("cx", {0, 1}));
        body.push_back(make_gate("x", {0}));
      }
      body.push_back(make_measure_all());
      return wrap(3, 3, std::move(body));
    }
    case AlgorithmId::kQuantumAnnealing: {
      const int n = task.iparam("n", 3);
      const int steps = task.iparam("steps", 3);
      require(n >= 2 && n <= 6, "annealing template: n in 2..6");
      require(steps >= 1 && steps <= 8, "annealing template: steps 1..8");
      for (int q = 0; q < n; ++q) {
        body.push_back(make_gate("h", {static_cast<std::size_t>(q)}));
      }
      for (int s = 0; s < steps; ++s) {
        const double frac = static_cast<double>(s + 1) / steps;
        const double gamma = 1.6 * frac;
        const double beta = 1.2 * (1.0 - frac) + 0.05;
        for (int q = 0; q + 1 < n; ++q) {
          body.push_back(make_gate("rzz",
                                   {static_cast<std::size_t>(q),
                                    static_cast<std::size_t>(q + 1)},
                                   {gamma}));
        }
        for (int q = 0; q < n; ++q) {
          body.push_back(
              make_gate("rx", {static_cast<std::size_t>(q)}, {beta}));
        }
      }
      body.push_back(make_measure_all());
      return wrap(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                  std::move(body));
    }
    case AlgorithmId::kGhzParityOracle: {
      const int n = task.iparam("n", 3);
      require(n >= 2 && n <= 6, "ghz_parity_oracle template: n in 2..6");
      body.push_back(make_gate("h", {0}));
      for (int q = 1; q < n; ++q) {
        body.push_back(make_gate("cx", {static_cast<std::size_t>(q - 1),
                                        static_cast<std::size_t>(q)}));
      }
      body.push_back(make_barrier());
      body.push_back(make_gate("z", {static_cast<std::size_t>(n - 1)}));
      body.push_back(make_barrier());
      for (int q = n - 1; q >= 1; --q) {
        body.push_back(make_gate("cx", {static_cast<std::size_t>(q - 1),
                                        static_cast<std::size_t>(q)}));
      }
      body.push_back(make_gate("h", {0}));
      body.push_back(make_measure(0, 0));
      return wrap(static_cast<std::size_t>(n), 1, std::move(body));
    }
  }
  throw InvalidArgumentError("gold_program: unknown algorithm");
}

}  // namespace qcgen::llm
