#pragma once
// Chain-of-Thought and Structured-CoT scaffold generation (paper Sec
// IV-C): the first scaffolds are hand-written; the rest are produced by a
// generator model that occasionally emits a *wrong* scaffold — the paper
// explicitly attributes part of the residual error to "incorrect CoT
// prompt generation".

#include <string>

#include "common/rng.hpp"
#include "llm/tasks.hpp"

namespace qcgen::llm {

enum class CotStyle {
  kZeroShot,    ///< "think step by step"
  kManual,      ///< worked reasoning example (plain CoT)
  kStructured,  ///< SCoT: explicit program-structure scaffold
};

std::string_view cot_style_name(CotStyle style);

/// A generated reasoning scaffold attached to a prompt.
struct CotScaffold {
  CotStyle style = CotStyle::kManual;
  std::string text;
  /// False when the generator produced a misleading scaffold; the code
  /// model then plans from wrong structure.
  bool faithful = true;
};

/// Probability that scaffold generation is unfaithful, per style.
/// Structured scaffolds constrain the output harder and fail less often.
double scaffold_error_rate(CotStyle style);

/// Generates the scaffold for a task. The first `hand_written` prompts of
/// a suite are always faithful (manually authored, Sec IV-C); generated
/// ones are unfaithful with scaffold_error_rate(style).
CotScaffold generate_scaffold(const TaskSpec& task, CotStyle style,
                              bool hand_written, Rng& rng);

/// Knowledge boost fractions applied to the semantic axis when the
/// scaffold is faithful (SCoT > CoT; paper Fig 3).
double semantic_boost(CotStyle style);
/// Penalty fraction (negative boost) applied when unfaithful.
double semantic_penalty(CotStyle style);

/// Syntax-axis boost of a faithful scaffold: structured sections keep
/// statements well-formed (SCoT constrains the surface form hardest).
double syntax_boost(CotStyle style);

}  // namespace qcgen::llm
