#include "llm/simlm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "llm/templates.hpp"
#include "qasm/language.hpp"
#include "qasm/printer.hpp"

namespace qcgen::llm {

using qasm::DiagCode;
using qasm::GateStmt;
using qasm::Import;
using qasm::Program;
using qasm::RegRef;
using qasm::Stmt;

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeprecatedImport: return "deprecated-import";
    case FaultKind::kUnknownImport: return "unknown-import";
    case FaultKind::kParseCorruption: return "parse-corruption";
    case FaultKind::kUnknownGate: return "unknown-gate";
    case FaultKind::kWrongArity: return "wrong-arity";
    case FaultKind::kWrongParamCount: return "wrong-param-count";
    case FaultKind::kIndexError: return "index-error";
    case FaultKind::kMissingMeasure: return "missing-measure";
    case FaultKind::kWrongPlan: return "wrong-plan";
    case FaultKind::kSemanticSlip: return "semantic-slip";
  }
  return "?";
}

double repair_success_probability(DiagCode code) {
  switch (code) {
    case DiagCode::kLexError:
    case DiagCode::kParseError:
      return 0.45;
    case DiagCode::kDeprecatedImport:
      return 0.10;  // paper: import misuse dominates and resists repair
    case DiagCode::kUnknownImport:
      return 0.35;
    case DiagCode::kMissingQiskitImport:
      return 0.55;
    case DiagCode::kUnknownGate:
      return 0.40;
    case DiagCode::kWrongArity:
    case DiagCode::kWrongParamCount:
      return 0.45;
    case DiagCode::kQubitOutOfRange:
    case DiagCode::kClbitOutOfRange:
      return 0.55;
    case DiagCode::kNoMeasurement:
      return 0.45;
    case DiagCode::kDeterministicMeasurement:
    case DiagCode::kNonAdjacentQubits:
      // Informational abstract facts: a constant outcome is not a defect
      // to patch, and routing needs a compiler, not a line edit.
      return 0.0;
    case DiagCode::kQubitReuse:
    case DiagCode::kIdleQubitHotspot:
    case DiagCode::kUncomputedAncilla:
    case DiagCode::kDepthDominatingLayer:
      // Resource-analysis advisories: reuse/idle/serialisation findings
      // describe cost, not incorrectness — the program behaves the same
      // without the edit, so the repair loop leaves them alone (the
      // certified fix-it path in qasm/verify applies qubit-reuse).
      return 0.0;
    case DiagCode::kUnreachableConditional:
    case DiagCode::kRedundantReset:
    case DiagCode::kTrivialControlledGate:
      // Proof-backed dead code: the trace says exactly which statement
      // can be deleted, so the model usually gets it right.
      return 0.5;
    default:
      return 0.20;
  }
}

double repair_success_probability(const qasm::Diagnostic& diag) {
  const double base = repair_success_probability(diag.code);
  // Informational facts stay informational even when a fix-it rides along.
  if (base <= 0.0) return base;
  // A fix-it in the trace turns the repair into verbatim line copying;
  // even the resistant classes (deprecated imports) become near-certain.
  if (diag.fixit.has_value()) return std::max(base, 0.92);
  return base;
}

double semantic_replan_probability(int pass_number) {
  // The model's algorithmic knowledge is persistent: told only that the
  // behaviour was wrong, it usually reproduces the same flawed plan
  // (paper Sec V-D: multi-pass mainly resolves syntactic errors, and
  // semantic improvement needs prompt-error-answer training data the
  // framework lacks).
  return std::min(0.06, 0.02 + 0.005 * static_cast<double>(pass_number));
}

SimLM::SimLM(KnowledgeState knowledge, std::uint64_t seed)
    : knowledge_(std::move(knowledge)), rng_(seed) {}

KnowledgeState SimLM::effective_knowledge(const TaskSpec& task,
                                          const GenerationContext& context,
                                          RetrievalTrace& trace,
                                          std::optional<CotScaffold>& scaffold) {
  KnowledgeState k = knowledge_;
  const std::string query = prompt_text(task);

  if (context.api_store != nullptr) {
    const auto hits = context.api_store->retrieve(
        query + " import module library version", context.rag_top_k);
    trace.api_hits = hits.size();
    // Only hits whose actionable snippet (the import statement) survived
    // chunking can teach the model anything about the API surface — the
    // paper's "basic RAG splitting technique, which does not take into
    // account code structure" loses exactly these snippets.
    std::size_t actionable = 0;
    for (const Retrieved& r : hits) {
      if (r.chunk->text.find("import ") == std::string::npos) continue;
      ++actionable;
      if (r.chunk->freshness == DocFreshness::kCurrent) {
        ++trace.api_fresh_hits;
      }
    }
    if (actionable > 0) {
      const double fresh_frac = static_cast<double>(trace.api_fresh_hits) /
                                static_cast<double>(actionable);
      // Fresh docs improve API recency; a stale-dominated context
      // actively reinforces the removed APIs (paper Sec V-E).
      k.api_recency = KnowledgeState::boost(
          k.api_recency, 0.25 * fresh_frac - 0.25 * (1.0 - fresh_frac));
      k.syntax_skill = KnowledgeState::boost(k.syntax_skill, 0.04 * fresh_frac);
    }
  }
  if (context.guide_store != nullptr) {
    const auto hits = context.guide_store->retrieve(query, context.rag_top_k);
    for (const Retrieved& r : hits) {
      if (r.chunk->algorithm == task.algorithm) {
        trace.guide_matched_algorithm = true;
        break;
      }
    }
    // Retrieval of the right guide gives a *limited* semantic boost —
    // the paper found inferring structure from chunks far weaker than
    // CoT's direct scaffolding.
    if (trace.guide_matched_algorithm) {
      k.semantic[task.algorithm] =
          KnowledgeState::boost(k.semantic_for(task.algorithm), 0.05);
    }
  }
  if (context.cot.has_value()) {
    scaffold = generate_scaffold(task, *context.cot, context.cot_hand_written,
                                 rng_);
    const double delta = scaffold->faithful ? semantic_boost(*context.cot)
                                            : semantic_penalty(*context.cot);
    k.semantic[task.algorithm] =
        KnowledgeState::boost(k.semantic_for(task.algorithm), delta);
    if (scaffold->faithful) {
      // Structured sections keep statements well-formed too.
      k.syntax_skill =
          KnowledgeState::boost(k.syntax_skill, syntax_boost(*context.cot));
    }
  }
  return k;
}

namespace {

std::vector<Stmt>& entry_body(Program& program) {
  require(!program.circuits.empty(), "SimLM: program has no circuit");
  return program.circuits.front().body;
}

bool is_gate(const Stmt& stmt) {
  return std::holds_alternative<GateStmt>(stmt);
}

/// Indices of gate statements in the body.
std::vector<std::size_t> gate_indices(const std::vector<Stmt>& body) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (is_gate(body[i])) out.push_back(i);
  }
  return out;
}

/// True for algorithm pairs whose default gold programs are behaviourally
/// identical (a "wrong" plan that would still pass the judge).
bool behaviourally_equivalent(AlgorithmId a, AlgorithmId b) {
  const auto is_uniform = [](AlgorithmId id) {
    return id == AlgorithmId::kSuperposition || id == AlgorithmId::kRandomNumber;
  };
  return is_uniform(a) && is_uniform(b);
}

/// A same-tier alternative algorithm (deterministic order, rng-chosen).
AlgorithmId wrong_algorithm(AlgorithmId correct, Rng& rng) {
  std::vector<AlgorithmId> candidates;
  for (AlgorithmId id : all_algorithms()) {
    if (id != correct && algorithm_tier(id) == algorithm_tier(correct) &&
        !behaviourally_equivalent(id, correct)) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return correct;
  return candidates[rng.uniform_int(
      static_cast<std::uint64_t>(candidates.size()))];
}

/// Gates whose operand order matters (reversing them changes behaviour).
bool order_sensitive(const GateStmt& g) {
  return (g.name == "cx" || g.name == "cy" || g.name == "ccx" ||
          g.name == "cswap") &&
         g.operands.size() >= 2;
}

/// Structural corruption of a correct plan: one of several realistic
/// algorithm-level mistakes. Each mode verifies it actually changed the
/// program and falls through to the next otherwise, ending at an
/// always-effective bit flip (X prepended to qubit 0). Returns a
/// description.
std::string corrupt_structure(Program& program, Rng& rng) {
  auto& body = entry_body(program);
  const auto gates = gate_indices(body);
  const auto mode = rng.uniform_int(static_cast<std::uint64_t>(4));
  if (mode == 0) {
    // Drop the leading preparation layer (all h gates before the first
    // non-h gate).
    std::vector<Stmt> out;
    bool dropping = true;
    bool dropped = false;
    for (Stmt& s : body) {
      if (dropping && is_gate(s) && std::get<GateStmt>(s).name == "h") {
        dropped = true;
        continue;
      }
      if (is_gate(s) && std::get<GateStmt>(s).name != "h") dropping = false;
      out.push_back(std::move(s));
    }
    if (dropped) {
      body = std::move(out);
      return "dropped-preparation-layer";
    }
    body = std::move(out);  // unchanged contents, restore
  }
  if (mode <= 1) {
    // Reverse operands of order-sensitive multi-qubit gates.
    bool reversed = false;
    for (std::size_t i : gates) {
      auto& g = std::get<GateStmt>(body[i]);
      if (order_sensitive(g)) {
        std::reverse(g.operands.begin(), g.operands.end());
        reversed = true;
      }
    }
    if (reversed) return "reversed-entangler-operands";
  }
  if (mode <= 2) {
    // Shift every rotation parameter by pi (wrong phase convention).
    bool shifted = false;
    for (std::size_t i : gates) {
      auto& g = std::get<GateStmt>(body[i]);
      for (auto& p : g.params) {
        p = qasm::Expr::make_binary(qasm::Expr::Kind::kAdd, p,
                                    qasm::Expr::make_pi());
        shifted = true;
      }
    }
    if (shifted) return "shifted-parameters";
  }
  // Remove the middle third of the gate statements (lost core
  // transformation).
  if (gates.size() >= 3) {
    const std::size_t begin = gates[gates.size() / 3];
    const std::size_t end = gates[2 * gates.size() / 3];
    std::vector<Stmt> out;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i >= begin && i <= end && is_gate(body[i])) continue;
      out.push_back(std::move(body[i]));
    }
    body = std::move(out);
    return "dropped-core-segment";
  }
  // Last resort: a stray bit flip before everything else.
  body.insert(body.begin(), make_gate("x", {0}));
  return "stray-bitflip";
}

/// Small in-plan slip: one wrong detail on a random gate.
std::string apply_slip(Program& program, Rng& rng) {
  auto& body = entry_body(program);
  const auto gates = gate_indices(body);
  if (gates.empty()) return "noop";
  auto& g = std::get<GateStmt>(
      body[gates[rng.uniform_int(static_cast<std::uint64_t>(gates.size()))]]);
  if (order_sensitive(g) && rng.bernoulli(0.5)) {
    std::swap(g.operands[0], g.operands[1]);
    return "swapped-operands:" + g.name;
  }
  if (!g.params.empty()) {
    g.params[0] = qasm::Expr::make_binary(
        qasm::Expr::Kind::kAdd, g.params[0],
        qasm::Expr::make_binary(qasm::Expr::Kind::kDiv, qasm::Expr::make_pi(),
                                qasm::Expr::make_number(2.0)));
    return "shifted-angle:" + g.name;
  }
  const std::string original = g.name;
  g.name = g.name == "h" ? "x" : "h";
  return "replaced-gate:" + original + "->" + g.name;
}

const char* kBogusGateNames[] = {"u2", "mcx", "crx", "hadamard", "not"};
const char* kBogusImports[] = {"quantum_utils", "qiskit_terra.tools",
                               "qclib.runtime"};

}  // namespace

Program SimLM::plan(const TaskSpec& task, const KnowledgeState& knowledge,
                    std::vector<Fault>& faults) {
  const double sem = knowledge.semantic_for(task.algorithm);
  if (rng_.bernoulli(sem)) {
    Program program = gold_program(task);
    return program;
  }
  // Wrong plan: either the wrong algorithm entirely or a structurally
  // broken rendition of the right one.
  if (rng_.bernoulli(0.45)) {
    const AlgorithmId wrong = wrong_algorithm(task.algorithm, rng_);
    TaskSpec substitute;
    substitute.algorithm = wrong;  // default parameters
    Program program = gold_program(substitute);
    faults.push_back(Fault{FaultKind::kWrongPlan,
                           "wrong-algorithm:" +
                               std::string(algorithm_name(wrong)),
                           0});
    return program;
  }
  Program program = gold_program(task);
  const std::string detail = corrupt_structure(program, rng_);
  faults.push_back(Fault{FaultKind::kWrongPlan, detail, 0});
  return program;
}

void SimLM::inject_surface_faults(Program& program, const FaultRates& rates,
                                  std::vector<Fault>& faults) {
  const auto& registry = qasm::LanguageRegistry::current();
  auto& body = entry_body(program);

  if (rng_.bernoulli(rates.deprecated_import)) {
    const auto& deprecated = registry.deprecated_imports();
    const std::string& pick = deprecated[rng_.uniform_int(
        static_cast<std::uint64_t>(deprecated.size()))];
    program.imports.push_back(Import{pick, 0});
    faults.push_back(Fault{FaultKind::kDeprecatedImport, pick, 0});
  }
  if (rng_.bernoulli(rates.unknown_import)) {
    const std::string pick = kBogusImports[rng_.uniform_int(
        static_cast<std::uint64_t>(std::size(kBogusImports)))];
    program.imports.push_back(Import{pick, 0});
    faults.push_back(Fault{FaultKind::kUnknownImport, pick, 0});
  }

  const auto gates = gate_indices(body);
  if (!gates.empty() && rng_.bernoulli(rates.gate_misuse)) {
    const std::size_t idx =
        gates[rng_.uniform_int(static_cast<std::uint64_t>(gates.size()))];
    auto& g = std::get<GateStmt>(body[idx]);
    switch (rng_.uniform_int(static_cast<std::uint64_t>(3))) {
      case 0: {
        faults.push_back(Fault{FaultKind::kUnknownGate, g.name, idx});
        g.name = kBogusGateNames[rng_.uniform_int(
            static_cast<std::uint64_t>(std::size(kBogusGateNames)))];
        break;
      }
      case 1: {
        faults.push_back(Fault{FaultKind::kWrongArity, g.name, idx});
        if (g.operands.size() >= 2 && rng_.bernoulli(0.5)) {
          g.operands.pop_back();
        } else {
          const std::size_t extra =
              g.operands.empty() ? 0 : (g.operands.back().index + 1);
          g.operands.push_back(RegRef{"q", extra, 0});
        }
        break;
      }
      default: {
        faults.push_back(Fault{FaultKind::kWrongParamCount, g.name, idx});
        if (!g.params.empty()) {
          g.params.clear();
        } else {
          g.params.push_back(qasm::Expr::make_number(0.5));
        }
        break;
      }
    }
  }
  if (!gates.empty() && rng_.bernoulli(rates.index_error)) {
    const std::size_t idx =
        gates[rng_.uniform_int(static_cast<std::uint64_t>(gates.size()))];
    auto& g = std::get<GateStmt>(body[idx]);
    if (!g.operands.empty()) {
      g.operands[0].index = program.circuits.front().num_qubits;  // one past
      faults.push_back(Fault{FaultKind::kIndexError, g.name, idx});
    }
  }
  if (rng_.bernoulli(rates.missing_measure)) {
    bool removed = false;
    for (auto& stmt : body) {
      if (std::holds_alternative<qasm::MeasureStmt>(stmt) ||
          std::holds_alternative<qasm::MeasureAllStmt>(stmt)) {
        stmt = Stmt{qasm::BarrierStmt{0}};  // keep indices stable
        removed = true;
      }
    }
    if (removed) {
      faults.push_back(Fault{FaultKind::kMissingMeasure, "", 0});
    }
  }
}

std::string SimLM::realise(const Program& program, const FaultRates& rates,
                           std::vector<Fault>& faults) {
  std::string source = qasm::print_program(program);
  if (rng_.bernoulli(rates.parse_corruption)) {
    // Delete a random semicolon or brace: the classic truncation /
    // malformed-line failure of autoregressive code models.
    std::vector<std::size_t> spots;
    for (std::size_t i = 0; i < source.size(); ++i) {
      if (source[i] == ';' || source[i] == '}') spots.push_back(i);
    }
    if (!spots.empty()) {
      const std::size_t pos =
          spots[rng_.uniform_int(static_cast<std::uint64_t>(spots.size()))];
      source.erase(pos, 1);
      faults.push_back(Fault{FaultKind::kParseCorruption,
                             "deleted:" + std::string(1, ';'), 0});
    }
  }
  return source;
}

GenerationResult SimLM::generate_with(const TaskSpec& task,
                                      const GenerationContext& context,
                                      double extra_semantic_boost) {
  GenerationResult result;
  std::optional<CotScaffold> scaffold;
  KnowledgeState k =
      effective_knowledge(task, context, result.retrieval, scaffold);
  if (extra_semantic_boost > 0.0) {
    k.semantic[task.algorithm] = KnowledgeState::boost(
        k.semantic_for(task.algorithm), extra_semantic_boost);
  }
  result.scaffold = scaffold;
  result.effective = k;

  result.intended_ast = plan(task, k, result.faults);
  result.ast = result.intended_ast;

  const FaultRates rates =
      fault_rates(k, task.algorithm, context.syntax_difficulty);
  // In-plan slip only when the plan itself is right.
  const bool planned_correctly =
      std::none_of(result.faults.begin(), result.faults.end(),
                   [](const Fault& f) { return f.kind == FaultKind::kWrongPlan; });
  if (planned_correctly && rng_.bernoulli(rates.semantic_slip)) {
    const std::string detail = apply_slip(result.ast, rng_);
    result.faults.push_back(Fault{FaultKind::kSemanticSlip, detail, 0});
  }
  inject_surface_faults(result.ast, rates, result.faults);
  result.source = realise(result.ast, rates, result.faults);
  return result;
}

GenerationResult SimLM::generate(const TaskSpec& task,
                                 const GenerationContext& context) {
  return generate_with(task, context, 0.0);
}

GenerationResult SimLM::repair(const TaskSpec& task,
                               const GenerationResult& prev,
                               const std::vector<qasm::Diagnostic>& diagnostics,
                               bool semantic_failure,
                               const GenerationContext& context,
                               int pass_number) {
  require(pass_number >= 1, "SimLM::repair: pass_number >= 1");
  const bool has_error_diags = qasm::has_errors(diagnostics);
  if (!has_error_diags && semantic_failure) {
    // Behaviourally wrong but statically clean. Mostly the model sticks
    // to its flawed plan (no new information about the algorithm); only
    // occasionally does the feedback trigger a genuine replan. Abstract
    // facts in the trace (e.g. "this measurement is provably constant 0",
    // "this cx has a |0> control") are new information about *why* the
    // behaviour is wrong — precisely what a bare mismatch signal lacks —
    // so they multiply the replan odds.
    const bool has_abstract_facts = std::any_of(
        diagnostics.begin(), diagnostics.end(),
        [](const qasm::Diagnostic& d) {
          return d.code == DiagCode::kDeterministicMeasurement ||
                 d.code == DiagCode::kUnreachableConditional ||
                 d.code == DiagCode::kRedundantReset ||
                 d.code == DiagCode::kTrivialControlledGate;
        });
    const double replan = semantic_replan_probability(pass_number) *
                          (has_abstract_facts ? 4.0 : 1.0);
    if (!rng_.bernoulli(replan)) {
      GenerationResult stubborn = prev;
      return stubborn;
    }
    return generate_with(task, context,
                         0.10 * static_cast<double>(pass_number));
  }

  // Fix probability decays with repeated attempts: a model that failed to
  // fix an error class once tends to repeat the same wrong fix (paper:
  // additional passes beyond the third yield limited benefit).
  const double attempt_decay =
      std::pow(0.55, static_cast<double>(pass_number - 1));

  GenerationResult next = prev;
  next.source.clear();
  const auto& registry = qasm::LanguageRegistry::current();
  auto& body = entry_body(next.ast);
  const auto& intended_body = prev.intended_ast.circuits.empty()
                                  ? body
                                  : prev.intended_ast.circuits.front().body;

  // Track which fault records were resolved so the artifact stays honest.
  std::vector<Fault> remaining;
  const auto fault_matching = [&](FaultKind kind) -> const Fault* {
    for (const Fault& f : prev.faults) {
      if (f.kind == kind) return &f;
    }
    return nullptr;
  };

  bool reprint_cleanly = false;
  std::vector<FaultKind> fixed;
  int drop_unreachable = 0;
  int drop_redundant_reset = 0;
  int drop_trivial_control = 0;
  for (const qasm::Diagnostic& diag : diagnostics) {
    const double p = repair_success_probability(diag) * attempt_decay;
    // Skip zero-probability diags without consuming a draw so the RNG
    // stream matches runs where the informational passes are disabled.
    if (p <= 0.0 || !rng_.bernoulli(p)) continue;
    switch (diag.code) {
      case DiagCode::kLexError:
      case DiagCode::kParseError:
        reprint_cleanly = true;
        fixed.push_back(FaultKind::kParseCorruption);
        break;
      case DiagCode::kDeprecatedImport: {
        for (Import& imp : next.ast.imports) {
          if (registry.import_status(imp.path) == qasm::ImportStatus::kDeprecated) {
            if (auto repl = registry.import_replacement(imp.path)) {
              imp.path = *repl;
            } else {
              imp.path = std::string(registry.required_import());
            }
          }
        }
        fixed.push_back(FaultKind::kDeprecatedImport);
        break;
      }
      case DiagCode::kUnknownImport: {
        std::erase_if(next.ast.imports, [&](const Import& imp) {
          return registry.import_status(imp.path) == qasm::ImportStatus::kUnknown;
        });
        fixed.push_back(FaultKind::kUnknownImport);
        break;
      }
      case DiagCode::kMissingQiskitImport:
        next.ast.imports.insert(next.ast.imports.begin(),
                                Import{"qiskit", 1});
        break;
      case DiagCode::kUnknownGate: {
        const Fault* record = fault_matching(FaultKind::kUnknownGate);
        for (std::size_t i = 0; i < body.size(); ++i) {
          if (!is_gate(body[i])) continue;
          auto& g = std::get<GateStmt>(body[i]);
          if (registry.is_known_gate(g.name)) continue;
          if (record != nullptr && record->stmt_index == i &&
              rng_.bernoulli(0.75)) {
            // The model "remembers its intent" and restores the original.
            g.name = record->detail;
          } else {
            // Plausible guess from context: same arity, Clifford default.
            static const char* k1q[] = {"h", "x", "z"};
            static const char* k2q[] = {"cx", "cz", "swap"};
            static const char* k3q[] = {"ccx", "cswap"};
            const std::size_t arity = g.operands.size();
            if (arity <= 1) {
              g.name = k1q[rng_.uniform_int(static_cast<std::uint64_t>(3))];
            } else if (arity == 2) {
              g.name = k2q[rng_.uniform_int(static_cast<std::uint64_t>(3))];
            } else {
              g.name = k3q[rng_.uniform_int(static_cast<std::uint64_t>(2))];
            }
            g.params.clear();
          }
        }
        fixed.push_back(FaultKind::kUnknownGate);
        break;
      }
      case DiagCode::kWrongArity:
      case DiagCode::kWrongParamCount: {
        const FaultKind kind = diag.code == DiagCode::kWrongArity
                                   ? FaultKind::kWrongArity
                                   : FaultKind::kWrongParamCount;
        const Fault* record = fault_matching(kind);
        if (record != nullptr && record->stmt_index < body.size() &&
            record->stmt_index < intended_body.size()) {
          body[record->stmt_index] = intended_body[record->stmt_index];
        }
        fixed.push_back(kind);
        break;
      }
      case DiagCode::kQubitOutOfRange:
      case DiagCode::kClbitOutOfRange: {
        const std::size_t limit = next.ast.circuits.front().num_qubits;
        for (Stmt& stmt : body) {
          if (!is_gate(stmt)) continue;
          for (auto& ref : std::get<GateStmt>(stmt).operands) {
            if (ref.index >= limit) ref.index = limit - 1;
          }
        }
        fixed.push_back(FaultKind::kIndexError);
        break;
      }
      case DiagCode::kNoMeasurement: {
        const Fault* record = fault_matching(FaultKind::kMissingMeasure);
        if (record != nullptr) {
          for (std::size_t i = 0;
               i < body.size() && i < intended_body.size(); ++i) {
            if (std::holds_alternative<qasm::MeasureStmt>(intended_body[i]) ||
                std::holds_alternative<qasm::MeasureAllStmt>(
                    intended_body[i])) {
              body[i] = intended_body[i];
            }
          }
          fixed.push_back(FaultKind::kMissingMeasure);
        }
        break;
      }
      case DiagCode::kDeprecatedGateAlias: {
        for (Stmt& stmt : body) {
          if (!is_gate(stmt)) continue;
          auto& g = std::get<GateStmt>(stmt);
          if (registry.is_deprecated_gate_alias(g.name)) {
            g.name = std::string(sim::gate_name(*registry.resolve_gate(g.name)));
          }
        }
        break;
      }
      case DiagCode::kRedundantGatePair: {
        // The fix-it names the gate; drop the first adjacent identical
        // pair (removal of a self-inverse pair is behaviour-preserving).
        for (std::size_t i = 0; i + 1 < body.size(); ++i) {
          if (!is_gate(body[i]) || !is_gate(body[i + 1])) continue;
          const auto& a = std::get<GateStmt>(body[i]);
          const auto& b = std::get<GateStmt>(body[i + 1]);
          if (a.name != b.name || a.operands.size() != b.operands.size()) {
            continue;
          }
          const bool same_operands = std::equal(
              a.operands.begin(), a.operands.end(), b.operands.begin(),
              [](const RegRef& x, const RegRef& y) {
                return x.index == y.index;
              });
          if (!same_operands) continue;
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i),
                     body.begin() + static_cast<std::ptrdiff_t>(i + 2));
          break;
        }
        break;
      }
      case DiagCode::kDoubleMeasurement: {
        for (std::size_t i = 0; i + 1 < body.size(); ++i) {
          const auto* a = std::get_if<qasm::MeasureStmt>(&body[i]);
          const auto* b = std::get_if<qasm::MeasureStmt>(&body[i + 1]);
          if (a == nullptr || b == nullptr ||
              a->qubit.index != b->qubit.index) {
            continue;
          }
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i + 1));
          break;
        }
        break;
      }
      case DiagCode::kUnreachableConditional:
        // Structural deletions are deferred until after this loop: they
        // shift statement indices, and the intent-restoring repairs above
        // address body by the fault record's stmt_index.
        ++drop_unreachable;
        break;
      case DiagCode::kRedundantReset:
        ++drop_redundant_reset;
        break;
      case DiagCode::kTrivialControlledGate:
        ++drop_trivial_control;
        break;
      default:
        break;
    }
  }

  // Proof-backed deletions, applied after the indexed repairs above so
  // those saw unshifted statement positions. Each deletes one statement
  // the abstract interpreter proved to be a no-op.
  const auto delete_first_unreachable = [&]() -> bool {
    // First conditional whose clbit is tested true but never written
    // before it (the statement the fix-it span covers).
    std::vector<bool> written(next.ast.circuits.front().num_clbits, false);
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (const auto* m = std::get_if<qasm::MeasureStmt>(&body[i])) {
        if (m->clbit.index < written.size()) written[m->clbit.index] = true;
        continue;
      }
      if (std::holds_alternative<qasm::MeasureAllStmt>(body[i])) {
        written.assign(written.size(), true);
        continue;
      }
      const auto* cond = std::get_if<std::shared_ptr<qasm::IfStmt>>(&body[i]);
      if (cond == nullptr || *cond == nullptr) continue;
      const qasm::IfStmt& guard = **cond;
      if (guard.value && guard.clbit.index < written.size() &&
          !written[guard.clbit.index]) {
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  };
  const auto delete_first_redundant_reset = [&]() -> bool {
    // First reset on a qubit that nothing has touched yet.
    std::vector<bool> touched(next.ast.circuits.front().num_qubits, false);
    const auto touch = [&](const RegRef& ref) {
      if (ref.index < touched.size()) touched[ref.index] = true;
    };
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (const auto* r = std::get_if<qasm::ResetStmt>(&body[i])) {
        if (r->qubit.index < touched.size() && !touched[r->qubit.index]) {
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
          return true;
        }
        touch(r->qubit);
      } else if (is_gate(body[i])) {
        for (const RegRef& ref : std::get<GateStmt>(body[i]).operands) {
          touch(ref);
        }
      } else if (const auto* m = std::get_if<qasm::MeasureStmt>(&body[i])) {
        touch(m->qubit);
      } else if (std::holds_alternative<qasm::MeasureAllStmt>(body[i])) {
        touched.assign(touched.size(), true);
      } else if (std::holds_alternative<std::shared_ptr<qasm::IfStmt>>(
                     body[i])) {
        // Conservative: a guarded statement may touch anything.
        touched.assign(touched.size(), true);
      }
    }
    return false;
  };
  const auto delete_first_trivial_control = [&]() -> bool {
    // First controlled gate whose control qubit is still in |0> —
    // untouched since preparation, so the gate is a provable identity.
    std::vector<bool> touched(next.ast.circuits.front().num_qubits, false);
    const auto touch = [&](const RegRef& ref) {
      if (ref.index < touched.size()) touched[ref.index] = true;
    };
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (is_gate(body[i])) {
        const auto& g = std::get<GateStmt>(body[i]);
        const auto kind = registry.resolve_gate(g.name);
        const bool controlled =
            kind.has_value() &&
            (*kind == sim::GateKind::kCX || *kind == sim::GateKind::kCY ||
             *kind == sim::GateKind::kCZ || *kind == sim::GateKind::kCSwap ||
             *kind == sim::GateKind::kCCX || *kind == sim::GateKind::kCPhase);
        if (controlled && !g.operands.empty() &&
            g.operands.front().index < touched.size() &&
            !touched[g.operands.front().index]) {
          body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
          return true;
        }
        for (const RegRef& ref : g.operands) touch(ref);
      } else if (const auto* m = std::get_if<qasm::MeasureStmt>(&body[i])) {
        touch(m->qubit);
      } else if (const auto* r = std::get_if<qasm::ResetStmt>(&body[i])) {
        touch(r->qubit);
      } else if (std::holds_alternative<qasm::MeasureAllStmt>(body[i])) {
        touched.assign(touched.size(), true);
      } else if (std::holds_alternative<std::shared_ptr<qasm::IfStmt>>(
                     body[i])) {
        touched.assign(touched.size(), true);
      }
    }
    return false;
  };
  // A still-missing measurement can be the only reason the premise holds
  // ("clbit never written", "control untouched"): deleting the statement
  // now would bake the breakage in once the measurement is restored, so
  // hold the deletions until that fault class is gone.
  const bool measure_fix_pending = std::any_of(
      prev.faults.begin(), prev.faults.end(), [&](const Fault& f) {
        return f.kind == FaultKind::kMissingMeasure &&
               std::find(fixed.begin(), fixed.end(), f.kind) == fixed.end();
      });
  if (!measure_fix_pending) {
    for (int k = 0; k < drop_unreachable && delete_first_unreachable(); ++k) {
    }
    for (int k = 0;
         k < drop_redundant_reset && delete_first_redundant_reset(); ++k) {
    }
    for (int k = 0;
         k < drop_trivial_control && delete_first_trivial_control(); ++k) {
    }
  }
  (void)reprint_cleanly;  // re-print below always restores text integrity

  for (const Fault& f : prev.faults) {
    if (std::find(fixed.begin(), fixed.end(), f.kind) == fixed.end()) {
      remaining.push_back(f);
    } else if (f.kind == FaultKind::kParseCorruption && !reprint_cleanly) {
      remaining.push_back(f);
    }
  }
  next.faults = std::move(remaining);

  // Realise the repaired program. A parse corruption that was not fixed
  // re-applies itself (the model reproduces its own malformed line).
  next.source = qasm::print_program(next.ast);
  const bool parse_fault_remains = std::any_of(
      next.faults.begin(), next.faults.end(), [](const Fault& f) {
        return f.kind == FaultKind::kParseCorruption;
      });
  if (parse_fault_remains) {
    std::vector<std::size_t> spots;
    for (std::size_t i = 0; i < next.source.size(); ++i) {
      if (next.source[i] == ';') spots.push_back(i);
    }
    if (!spots.empty()) {
      next.source.erase(
          spots[rng_.uniform_int(static_cast<std::uint64_t>(spots.size()))],
          1);
    }
  }
  return next;
}

}  // namespace qcgen::llm
