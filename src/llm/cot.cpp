#include "llm/cot.hpp"

#include "common/error.hpp"

namespace qcgen::llm {

std::string_view cot_style_name(CotStyle style) {
  switch (style) {
    case CotStyle::kZeroShot: return "zero-shot-cot";
    case CotStyle::kManual: return "cot";
    case CotStyle::kStructured: return "scot";
  }
  return "?";
}

double scaffold_error_rate(CotStyle style) {
  switch (style) {
    case CotStyle::kZeroShot: return 0.25;
    case CotStyle::kManual: return 0.12;
    case CotStyle::kStructured: return 0.05;
  }
  return 0.0;
}

double semantic_boost(CotStyle style) {
  switch (style) {
    case CotStyle::kZeroShot: return 0.35;
    case CotStyle::kManual: return 0.88;
    case CotStyle::kStructured: return 0.95;
  }
  return 0.0;
}

double semantic_penalty(CotStyle style) {
  switch (style) {
    case CotStyle::kZeroShot: return -0.30;
    case CotStyle::kManual: return -0.45;
    case CotStyle::kStructured: return -0.40;
  }
  return 0.0;
}

double syntax_boost(CotStyle style) {
  switch (style) {
    case CotStyle::kZeroShot: return 0.04;
    case CotStyle::kManual: return 0.20;
    case CotStyle::kStructured: return 0.28;
  }
  return 0.0;
}

CotScaffold generate_scaffold(const TaskSpec& task, CotStyle style,
                              bool hand_written, Rng& rng) {
  CotScaffold scaffold;
  scaffold.style = style;
  scaffold.faithful =
      hand_written || !rng.bernoulli(scaffold_error_rate(style));
  const std::string algo = std::string(algorithm_name(task.algorithm));
  switch (style) {
    case CotStyle::kZeroShot:
      scaffold.text = "Let's think step by step about how to implement " +
                      algo + " before writing any code.";
      break;
    case CotStyle::kManual:
      scaffold.text =
          "Reasoning: (1) identify the registers the " + algo +
          " workload needs; (2) recall the preparation layer; (3) apply "
          "the core transformation; (4) add measurements matching the "
          "question. Worked example follows the same four steps.";
      break;
    case CotStyle::kStructured:
      scaffold.text =
          "Structure:\n"
          "  registers: derive qubit/classical counts from the task\n"
          "  step 1: state preparation layer\n"
          "  step 2: core " + algo + " transformation\n"
          "  step 3: uncompute / basis change if the readout needs it\n"
          "  step 4: measurement into the classical register\n"
          "Emit one program section per step, in order.";
      break;
  }
  if (!scaffold.faithful) {
    scaffold.text += " (NOTE: generated scaffold misidentifies the core "
                     "transformation.)";
  }
  return scaffold;
}

}  // namespace qcgen::llm
