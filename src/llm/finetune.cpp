#include "llm/finetune.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qcgen::llm {

double fim_quality(double fim_rate) {
  require(fim_rate >= 0.0 && fim_rate <= 1.0, "fim_quality: rate in [0,1]");
  // Log-normal-shaped bump with mode at 0.1 (the paper's measured
  // optimum): quality(0.1) = 1; no infilling signal (rate 0) or
  // infilling-dominated training (rate 1) both cost roughly half the
  // fine-tuning benefit.
  const double floor = 0.45;
  if (fim_rate <= 0.0) return floor;
  const double x = std::log(fim_rate / 0.1);
  return floor + (1.0 - floor) * std::exp(-0.5 * x * x / (0.9 * 0.9));
}

double data_scale_factor(std::size_t corpus_tokens) {
  // Saturating log curve: 0 at 0 tokens, ~0.52 at 3M, ~0.8 at 100M.
  const double tokens = static_cast<double>(corpus_tokens);
  return 1.0 - 1.0 / (1.0 + std::log1p(tokens / 1.5e6));
}

KnowledgeState apply_finetuning(const KnowledgeState& base,
                                const FineTuneConfig& config) {
  require(config.upsampled_tokens >= config.corpus_tokens,
          "apply_finetuning: upsampled tokens below raw tokens");
  const double scale = data_scale_factor(config.corpus_tokens);
  const double fim = fim_quality(config.fim_rate);
  // Step count saturates quickly; 1500 steps at batch 4 on a small corpus
  // is enough to reach the data-limited plateau.
  const double step_factor =
      1.0 - std::exp(-static_cast<double>(config.steps) / 500.0);
  const double strength = scale * fim * step_factor;

  // Upsampling official sources mainly improves API recency (paper:
  // "official sources given higher priority").
  const double upsample_ratio =
      static_cast<double>(config.upsampled_tokens) /
      static_cast<double>(std::max<std::size_t>(1, config.corpus_tokens));
  const double recency_bonus =
      std::min(0.15, 0.08 * std::log2(std::max(1.0, upsample_ratio)) *
                         config.official_source_weight / 2.0);

  KnowledgeState tuned = base;
  tuned.syntax_skill = KnowledgeState::boost(base.syntax_skill, 0.95 * strength);
  tuned.api_recency = std::clamp(
      KnowledgeState::boost(base.api_recency, 0.60 * strength) + recency_bonus,
      0.0, 1.0);
  // Scraped repos contain few high-quality algorithmic walkthroughs
  // (paper Sec V-C), so semantic gains are modest and tier-dependent.
  for (auto& [algo, sem] : tuned.semantic) {
    double gain = 0.0;
    switch (algorithm_tier(algo)) {
      case Tier::kBasic: gain = 0.18; break;
      case Tier::kIntermediate: gain = 0.08; break;
      case Tier::kAdvanced: gain = 0.04; break;
    }
    sem = KnowledgeState::boost(sem, gain * strength);
  }
  return tuned;
}

}  // namespace qcgen::llm
