#pragma once
// pass@k estimator (Chen et al., HumanEval) used in Sec V-A of the paper.

#include <cstddef>

namespace qcgen::llm {

/// Unbiased pass@k estimate: 1 - C(n-c, k) / C(n, k) for n samples of
/// which c passed. Requires k <= n. Returns 1.0 when c > n - k.
double pass_at_k(std::size_t n, std::size_t c, std::size_t k);

}  // namespace qcgen::llm
