#pragma once
// Chunking + BM25 retrieval: the vector-store half of the RAG pipeline
// (paper Sec IV-C, built there with langchain/ragatouille).
//
// Two chunkers are provided: the "basic" fixed-window splitter the paper
// used (and blamed for part of RAG's weakness), and a structure-aware
// splitter that respects sentence boundaries — the ABL-RAG ablation
// compares them.

#include <string>
#include <vector>

#include "llm/corpus.hpp"
#include "llm/tokenizer.hpp"

namespace qcgen::llm {

/// One retrievable chunk.
struct Chunk {
  std::string doc_id;
  std::string text;
  DocFreshness freshness = DocFreshness::kCurrent;
  std::optional<AlgorithmId> algorithm;
};

enum class ChunkStrategy {
  kBasic,           ///< fixed token windows, ignores structure (paper's)
  kStructureAware,  ///< splits on sentence boundaries, keeps units intact
};

/// Splits documents into chunks of roughly `window` tokens.
std::vector<Chunk> chunk_documents(const std::vector<Document>& docs,
                                   ChunkStrategy strategy,
                                   std::size_t window = 48);

/// A scored retrieval hit.
struct Retrieved {
  const Chunk* chunk = nullptr;
  double score = 0.0;
};

/// BM25 index over chunks.
class VectorStore {
 public:
  explicit VectorStore(std::vector<Chunk> chunks);

  std::size_t size() const noexcept { return chunks_.size(); }
  const std::vector<Chunk>& chunks() const noexcept { return chunks_; }

  /// Top-k chunks for a query, highest score first. Scores <= 0 are
  /// dropped, so the result may be shorter than k.
  std::vector<Retrieved> retrieve(const std::string& query,
                                  std::size_t k) const;

 private:
  double score(const std::string& query_token, std::size_t chunk_idx) const;

  std::vector<Chunk> chunks_;
  Vocabulary vocabulary_;
  std::vector<std::vector<std::string>> chunk_tokens_;
  std::vector<double> chunk_len_;
  double avg_len_ = 0.0;
};

}  // namespace qcgen::llm
