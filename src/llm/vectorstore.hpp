#pragma once
// Chunking + BM25 retrieval: the vector-store half of the RAG pipeline
// (paper Sec IV-C, built there with langchain/ragatouille).
//
// Two chunkers are provided: the "basic" fixed-window splitter the paper
// used (and blamed for part of RAG's weakness), and a structure-aware
// splitter that respects sentence boundaries — the ABL-RAG ablation
// compares them.

#include <memory>
#include <string>
#include <vector>

#include "common/cache/cache.hpp"
#include "llm/corpus.hpp"
#include "llm/tokenizer.hpp"

namespace qcgen::llm {

/// One retrievable chunk.
struct Chunk {
  std::string doc_id;
  std::string text;
  DocFreshness freshness = DocFreshness::kCurrent;
  std::optional<AlgorithmId> algorithm;
};

enum class ChunkStrategy {
  kBasic,           ///< fixed token windows, ignores structure (paper's)
  kStructureAware,  ///< splits on sentence boundaries, keeps units intact
};

/// Splits documents into chunks of roughly `window` tokens.
std::vector<Chunk> chunk_documents(const std::vector<Document>& docs,
                                   ChunkStrategy strategy,
                                   std::size_t window = 48);

/// A scored retrieval hit.
struct Retrieved {
  const Chunk* chunk = nullptr;
  double score = 0.0;
};

/// A hit in store-independent form — what the retrieval cache stores
/// (chunk pointers would dangle across stores; indices rebind cheaply).
struct ScoredIndex {
  std::size_t index = 0;
  double score = 0.0;
  friend bool operator==(const ScoredIndex&, const ScoredIndex&) = default;
};

/// Shared memoization layer for BM25 queries, keyed on
/// hash(corpus version, query, k); see VectorStore::attach_cache.
using RetrievalCache = cache::Cache<std::vector<ScoredIndex>>;

/// BM25 index over chunks.
class VectorStore {
 public:
  explicit VectorStore(std::vector<Chunk> chunks);

  std::size_t size() const noexcept { return chunks_.size(); }
  const std::vector<Chunk>& chunks() const noexcept { return chunks_; }

  /// Content digest of the indexed corpus. Folded into every retrieval
  /// cache key, so re-indexing a changed corpus (a "corpus version
  /// bump") invalidates by key divergence — stale entries from the old
  /// corpus can never be returned for the new one.
  std::uint64_t content_version() const noexcept { return content_version_; }

  /// Attaches a shared retrieval cache (null detaches). Retrieval is a
  /// pure function of (corpus, query, k), so memoization is invisible to
  /// callers; the cache may be shared across stores because keys carry
  /// each store's content_version().
  void attach_cache(std::shared_ptr<RetrievalCache> cache) noexcept {
    cache_ = std::move(cache);
  }

  /// Top-k chunks for a query, highest score first. Scores <= 0 are
  /// dropped, so the result may be shorter than k. Equal-score hits are
  /// ordered by chunk index — a stable, deterministic tie-break.
  std::vector<Retrieved> retrieve(const std::string& query,
                                  std::size_t k) const;

 private:
  double score(const std::string& query_token, std::size_t chunk_idx) const;
  std::vector<ScoredIndex> retrieve_uncached(const std::string& query,
                                             std::size_t k) const;

  std::vector<Chunk> chunks_;
  Vocabulary vocabulary_;
  std::vector<std::vector<std::string>> chunk_tokens_;
  std::vector<double> chunk_len_;
  double avg_len_ = 0.0;
  std::uint64_t content_version_ = 0;
  std::shared_ptr<RetrievalCache> cache_;
};

}  // namespace qcgen::llm
