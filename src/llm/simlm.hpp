#pragma once
// SimLM: the simulated quantum-code language model.
//
// Substitutes the paper's fine-tuned StarCoder (see DESIGN.md §2). Given
// a task and a technique context it emits QasmLite source by (1) planning
// — choosing the right algorithm template with probability given by its
// semantic knowledge, as modified by RAG retrieval results and CoT/SCoT
// scaffolds — and (2) surface realisation — printing the planned AST
// with stochastic fault injection whose rates derive from the knowledge
// state. Faults are recorded in the artifact so experiments can analyse
// error classes; the repair path uses records only where gated by an
// explicit "model remembers its intent" probability.

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "llm/cot.hpp"
#include "llm/knowledge.hpp"
#include "llm/tasks.hpp"
#include "llm/vectorstore.hpp"
#include "qasm/ast.hpp"
#include "qasm/diagnostics.hpp"

namespace qcgen::llm {

/// Classes of injected generation faults.
enum class FaultKind {
  kDeprecatedImport,
  kUnknownImport,
  kParseCorruption,
  kUnknownGate,
  kWrongArity,
  kWrongParamCount,
  kIndexError,
  kMissingMeasure,
  kWrongPlan,      ///< wrong algorithm or broken structure
  kSemanticSlip,   ///< right plan, wrong detail
};

std::string_view fault_kind_name(FaultKind kind);

/// Record of one injected fault (detail strings are class-specific,
/// e.g. the original gate mnemonic for kUnknownGate).
struct Fault {
  FaultKind kind = FaultKind::kSemanticSlip;
  std::string detail;
  std::size_t stmt_index = 0;
};

/// Technique configuration for one generation request.
struct GenerationContext {
  const VectorStore* api_store = nullptr;    ///< RAG over API docs
  const VectorStore* guide_store = nullptr;  ///< RAG over algorithm guides
  std::size_t rag_top_k = 4;
  std::optional<CotStyle> cot;
  bool cot_hand_written = false;
  /// Syntactic stress of the benchmark (QHE > semantic suite).
  double syntax_difficulty = 1.0;
};

/// Summary of RAG retrieval during one generation.
struct RetrievalTrace {
  std::size_t api_hits = 0;
  std::size_t api_fresh_hits = 0;
  bool guide_matched_algorithm = false;
};

/// One generated program plus provenance.
struct GenerationResult {
  std::string source;
  /// AST actually emitted (faults baked in, before text-level parse
  /// corruption).
  qasm::Program ast;
  /// AST the model planned before surface-fault injection ("intent");
  /// statement indices align with `ast` (surface faults are in-place).
  qasm::Program intended_ast;
  std::vector<Fault> faults;
  std::optional<CotScaffold> scaffold;
  RetrievalTrace retrieval;
  KnowledgeState effective;  ///< knowledge after technique boosts
};

/// The simulated model. Deterministic given (knowledge, seed) and the
/// request stream.
class SimLM {
 public:
  SimLM(KnowledgeState knowledge, std::uint64_t seed);

  const KnowledgeState& knowledge() const noexcept { return knowledge_; }

  /// Generates one sample for a task.
  GenerationResult generate(const TaskSpec& task,
                            const GenerationContext& context);

  /// Multi-pass repair (paper Sec IV-A): takes the previous artifact and
  /// its diagnostic trace and attempts class-specific fixes; when the
  /// program was behaviourally wrong despite clean diagnostics
  /// (`semantic_failure`), replans with a small per-pass semantic boost.
  GenerationResult repair(const TaskSpec& task, const GenerationResult& prev,
                          const std::vector<qasm::Diagnostic>& diagnostics,
                          bool semantic_failure,
                          const GenerationContext& context, int pass_number);

 private:
  GenerationResult generate_with(const TaskSpec& task,
                                 const GenerationContext& context,
                                 double extra_semantic_boost);
  KnowledgeState effective_knowledge(const TaskSpec& task,
                                     const GenerationContext& context,
                                     RetrievalTrace& trace,
                                     std::optional<CotScaffold>& scaffold);
  qasm::Program plan(const TaskSpec& task, const KnowledgeState& knowledge,
                     std::vector<Fault>& faults);
  void inject_surface_faults(qasm::Program& program, const FaultRates& rates,
                             std::vector<Fault>& faults);
  std::string realise(const qasm::Program& program, const FaultRates& rates,
                      std::vector<Fault>& faults);

  KnowledgeState knowledge_;
  Rng rng_;
};

/// Repair-success probabilities per diagnostic class (paper Sec V-D:
/// import misuse resists repair; mechanical errors fix easily).
double repair_success_probability(qasm::DiagCode code);

/// Per-diagnostic repair probability. Diagnostics carrying a fix-it are
/// near-certain to be repaired regardless of class: the error trace
/// hands the model the exact replacement line, so it only has to copy it
/// instead of re-deriving the edit. This is the mechanism by which the
/// lint fix-its lower mean passes-to-success in bench_multipass.
double repair_success_probability(const qasm::Diagnostic& diag);

/// Probability that a semantically-failed but statically-clean program
/// triggers a genuine replan on pass `pass_number` (small: the model
/// usually reproduces the same flawed plan).
double semantic_replan_probability(int pass_number);

}  // namespace qcgen::llm
