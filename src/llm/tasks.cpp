#include "llm/tasks.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qcgen::llm {

std::string_view tier_name(Tier tier) {
  switch (tier) {
    case Tier::kBasic: return "basic";
    case Tier::kIntermediate: return "intermediate";
    case Tier::kAdvanced: return "advanced";
  }
  return "?";
}

namespace {
struct AlgoMeta {
  AlgorithmId id;
  std::string_view name;
  Tier tier;
};

constexpr AlgoMeta kAlgos[] = {
    {AlgorithmId::kBellPair, "bell_pair", Tier::kBasic},
    {AlgorithmId::kGhz, "ghz", Tier::kBasic},
    {AlgorithmId::kSuperposition, "superposition", Tier::kBasic},
    {AlgorithmId::kSingleQubitRotation, "single_qubit_rotation", Tier::kBasic},
    {AlgorithmId::kBitflipEncoding, "bitflip_encoding", Tier::kBasic},
    {AlgorithmId::kRandomNumber, "random_number", Tier::kBasic},
    {AlgorithmId::kSwapTest, "swap_test", Tier::kBasic},
    {AlgorithmId::kPhaseKickback, "phase_kickback", Tier::kBasic},
    {AlgorithmId::kDeutschJozsa, "deutsch_jozsa", Tier::kIntermediate},
    {AlgorithmId::kBernsteinVazirani, "bernstein_vazirani",
     Tier::kIntermediate},
    {AlgorithmId::kGrover, "grover", Tier::kIntermediate},
    {AlgorithmId::kQft, "qft", Tier::kIntermediate},
    {AlgorithmId::kShorPeriodFinding, "shor_period_finding",
     Tier::kIntermediate},
    {AlgorithmId::kTeleportation, "teleportation", Tier::kAdvanced},
    {AlgorithmId::kQuantumWalk, "quantum_walk", Tier::kAdvanced},
    {AlgorithmId::kQuantumAnnealing, "quantum_annealing", Tier::kAdvanced},
    {AlgorithmId::kGhzParityOracle, "ghz_parity_oracle", Tier::kAdvanced},
    {AlgorithmId::kInverseQft, "inverse_qft", Tier::kAdvanced},
};

const AlgoMeta& meta(AlgorithmId id) {
  for (const AlgoMeta& m : kAlgos) {
    if (m.id == id) return m;
  }
  throw InvalidArgumentError("unknown AlgorithmId");
}
}  // namespace

std::string_view algorithm_name(AlgorithmId id) { return meta(id).name; }

Tier algorithm_tier(AlgorithmId id) { return meta(id).tier; }

std::vector<AlgorithmId> all_algorithms() {
  std::vector<AlgorithmId> out;
  for (const AlgoMeta& m : kAlgos) out.push_back(m.id);
  return out;
}

double TaskSpec::param(const std::string& key, double fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

int TaskSpec::iparam(const std::string& key, int fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : static_cast<int>(it->second);
}

std::string TaskSpec::id() const {
  std::ostringstream os;
  os << algorithm_name(algorithm);
  if (!params.empty()) {
    os << "(";
    bool first = true;
    for (const auto& [k, v] : params) {
      if (!first) os << ",";
      first = false;
      if (v == static_cast<double>(static_cast<long long>(v))) {
        os << k << "=" << static_cast<long long>(v);
      } else {
        os << k << "=" << format_double(v, 3);
      }
    }
    os << ")";
  }
  return os.str();
}

std::string prompt_text(const TaskSpec& task) {
  const int n = task.iparam("n", 2);
  std::ostringstream os;
  switch (task.algorithm) {
    case AlgorithmId::kBellPair:
      os << "Create a quantum circuit that prepares a Bell pair and "
            "measures both qubits.";
      break;
    case AlgorithmId::kGhz:
      os << "Write a circuit preparing an " << n
         << "-qubit GHZ state and measure every qubit.";
      break;
    case AlgorithmId::kSuperposition:
      os << "Put " << n
         << " qubits into a uniform superposition and sample the result.";
      break;
    case AlgorithmId::kSingleQubitRotation:
      os << "Prepare a single qubit rotated by RY(theta=" << task.param("theta", 0.7)
         << ") from |0> and measure it.";
      break;
    case AlgorithmId::kBitflipEncoding:
      os << "Encode one qubit into the 3-qubit bit-flip repetition code and "
            "measure the codeword.";
      break;
    case AlgorithmId::kRandomNumber:
      os << "Build a quantum random number generator over " << n
         << " qubits.";
      break;
    case AlgorithmId::kSwapTest:
      os << "Implement the swap test comparing two single-qubit states "
            "prepared by RY rotations.";
      break;
    case AlgorithmId::kPhaseKickback:
      os << "Demonstrate phase kickback using a controlled-phase gate onto "
            "an ancilla in the |-> state.";
      break;
    case AlgorithmId::kDeutschJozsa:
      os << "Implement the Deutsch-Jozsa algorithm over " << n
         << " input qubits with a "
         << (task.iparam("constant", 1) ? "constant" : "balanced")
         << " oracle and measure the input register.";
      break;
    case AlgorithmId::kBernsteinVazirani:
      os << "Implement Bernstein-Vazirani to recover the hidden "
         << n << "-bit string " << task.iparam("secret", 1) << ".";
      break;
    case AlgorithmId::kGrover:
      os << "Run Grover search over " << n << " qubits marking state "
         << task.iparam("marked", 1) << " with "
         << task.iparam("iterations", 1) << " iteration(s).";
      break;
    case AlgorithmId::kQft:
      os << "Apply the quantum Fourier transform to " << n
         << " qubits prepared in a basis state, then measure.";
      break;
    case AlgorithmId::kShorPeriodFinding:
      os << "Implement the period-finding core of Shor's algorithm for "
            "a = 7, N = 15 with a 3-qubit counting register.";
      break;
    case AlgorithmId::kTeleportation:
      os << "Teleport the state RY(" << task.param("theta", 1.1)
         << ")|0> from qubit 0 to qubit 2 using classically conditioned "
            "corrections.";
      break;
    case AlgorithmId::kQuantumWalk:
      os << "Simulate a discrete-time quantum walk on a cycle with "
         << task.iparam("steps", 2) << " coin-position steps.";
      break;
    case AlgorithmId::kQuantumAnnealing:
      os << "Approximate quantum annealing of a " << n
         << "-qubit ferromagnetic Ising chain with a Trotterised schedule "
            "of " << task.iparam("steps", 3) << " steps.";
      break;
    case AlgorithmId::kGhzParityOracle:
      os << "Prepare a GHZ state, apply a parity phase oracle and undo the "
            "preparation to read the parity out on qubit 0.";
      break;
    case AlgorithmId::kInverseQft:
      os << "Apply QFT followed by the inverse QFT on " << n
         << " qubits and verify the state returns to the basis state.";
      break;
  }
  return os.str();
}

}  // namespace qcgen::llm
