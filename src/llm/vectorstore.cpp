#include "llm/vectorstore.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/cache/hash.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"

namespace qcgen::llm {

std::vector<Chunk> chunk_documents(const std::vector<Document>& docs,
                                   ChunkStrategy strategy,
                                   std::size_t window) {
  require(window >= 8, "chunk_documents: window too small");
  std::vector<Chunk> chunks;
  for (const Document& doc : docs) {
    const auto emit = [&](std::string text) {
      if (trim(text).empty()) return;
      Chunk c;
      c.doc_id = doc.id;
      c.text = std::move(text);
      c.freshness = doc.freshness;
      c.algorithm = doc.algorithm;
      chunks.push_back(std::move(c));
    };
    if (strategy == ChunkStrategy::kBasic) {
      // Fixed token windows over the raw word stream — chops sentences
      // and code examples mid-unit, exactly like naive RAG splitting.
      const auto words = split_whitespace(doc.text);
      for (std::size_t start = 0; start < words.size(); start += window) {
        const std::size_t end = std::min(words.size(), start + window);
        std::vector<std::string> piece(words.begin() + static_cast<std::ptrdiff_t>(start),
                                       words.begin() + static_cast<std::ptrdiff_t>(end));
        emit(join(piece, " "));
      }
    } else {
      // Structure-aware: accumulate whole sentences up to the window.
      std::vector<std::string> sentences;
      std::string current;
      for (char c : doc.text) {
        current += c;
        if (c == '.' || c == ';') {
          sentences.push_back(current);
          current.clear();
        }
      }
      if (!trim(current).empty()) sentences.push_back(current);
      std::string acc;
      for (const std::string& s : sentences) {
        if (!acc.empty() && count_tokens(acc) + count_tokens(s) > window) {
          emit(acc);
          acc.clear();
        }
        acc += s;
      }
      emit(acc);
    }
  }
  return chunks;
}

VectorStore::VectorStore(std::vector<Chunk> chunks)
    : chunks_(std::move(chunks)) {
  require(!chunks_.empty(), "VectorStore: empty chunk set");
  chunk_tokens_.reserve(chunks_.size());
  chunk_len_.reserve(chunks_.size());
  double total_len = 0.0;
  cache::KeyHasher version;
  version.mix(static_cast<std::uint64_t>(chunks_.size()));
  for (const Chunk& c : chunks_) {
    vocabulary_.add_document(c.text);
    chunk_tokens_.push_back(tokenize(c.text));
    chunk_len_.push_back(static_cast<double>(chunk_tokens_.back().size()));
    total_len += chunk_len_.back();
    version.mix(c.doc_id).mix(c.text);
    version.mix(static_cast<std::uint64_t>(c.freshness));
    version.mix(c.algorithm.has_value());
    if (c.algorithm.has_value()) {
      version.mix(static_cast<std::uint64_t>(*c.algorithm));
    }
  }
  avg_len_ = total_len / static_cast<double>(chunks_.size());
  content_version_ = version.digest();
}

double VectorStore::score(const std::string& query_token,
                          std::size_t chunk_idx) const {
  constexpr double k1 = 1.5;
  constexpr double b = 0.75;
  std::size_t tf = 0;
  for (const std::string& t : chunk_tokens_[chunk_idx]) {
    if (t == query_token) ++tf;
  }
  if (tf == 0) return 0.0;
  const double idf = vocabulary_.idf(query_token);
  const double norm =
      k1 * (1.0 - b + b * chunk_len_[chunk_idx] / avg_len_);
  return idf * (static_cast<double>(tf) * (k1 + 1.0)) /
         (static_cast<double>(tf) + norm);
}

std::vector<ScoredIndex> VectorStore::retrieve_uncached(
    const std::string& query, std::size_t k) const {
  const auto query_tokens = tokenize(query);
  std::vector<ScoredIndex> hits;
  hits.reserve(chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    double s = 0.0;
    for (const std::string& qt : query_tokens) s += score(qt, i);
    if (s > 0.0) hits.push_back(ScoredIndex{i, s});
  }
  // Equal scores fall back to chunk index: a total, stable order. The
  // previous doc_id tie-break left same-document ties in unspecified
  // order (std::sort is not stable), so retrieval output could depend on
  // the sort implementation — fatal once these results are cache values.
  std::sort(hits.begin(), hits.end(),
            [](const ScoredIndex& a, const ScoredIndex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::vector<Retrieved> VectorStore::retrieve(const std::string& query,
                                             std::size_t k) const {
  failpoint::trip("retrieval.query");
  trace::TraceSpan span("bm25.query");
  std::vector<ScoredIndex> scored;
  if (cache_ != nullptr) {
    const std::uint64_t key = cache::KeyHasher()
                                  .mix(content_version_)
                                  .mix(query)
                                  .mix(static_cast<std::uint64_t>(k))
                                  .digest();
    scored = *cache_->get_or_compute(
        key, [&] { return retrieve_uncached(query, k); });
  } else {
    scored = retrieve_uncached(query, k);
  }
  std::vector<Retrieved> hits;
  hits.reserve(scored.size());
  for (const ScoredIndex& s : scored) {
    hits.push_back(Retrieved{&chunks_[s.index], s.score});
  }
  trace::Metrics::counter("bm25.queries");
  trace::Metrics::counter("bm25.hits",
                          static_cast<std::int64_t>(hits.size()));
  if (!hits.empty()) trace::Metrics::observe("bm25.top_score", hits[0].score);
  return hits;
}

}  // namespace qcgen::llm
