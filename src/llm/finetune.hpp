#pragma once
// Supervised fine-tuning model (paper Sec III-B / V-A).
//
// The paper fine-tunes StarCoder with LoRA on a scraped Qiskit corpus
// (3M tokens upsampled to 9M, FIM rate 0.1, 1500 steps). We model the
// effect of those hyper-parameters on the knowledge axes: dataset size
// drives a saturating syntax/API gain, the FIM rate has an interior
// optimum near 0.1, and official-source upsampling improves API recency.

#include <cstddef>

#include "llm/knowledge.hpp"

namespace qcgen::llm {

/// Fine-tuning dataset + hyper-parameters.
struct FineTuneConfig {
  std::size_t corpus_tokens = 3'000'000;
  std::size_t upsampled_tokens = 9'000'000;
  double official_source_weight = 2.0;  ///< priority of official repos
  double fim_rate = 0.1;
  std::size_t steps = 1500;
  std::size_t batch_size = 4;
  double peak_learning_rate = 3e-4;
};

/// Quality multiplier of the FIM rate choice, in (0, 1]; peaks at 0.1
/// (the paper's measured optimum) and decays on both sides.
double fim_quality(double fim_rate);

/// Saturating data-scale factor in (0, 1): ~0.52 at 3M tokens, so the
/// paper's "limited dataset" leaves clear headroom.
double data_scale_factor(std::size_t corpus_tokens);

/// Applies fine-tuning to a base knowledge state and returns the tuned
/// state. Gains saturate with data size and are strongest on syntax.
KnowledgeState apply_finetuning(const KnowledgeState& base,
                                const FineTuneConfig& config);

}  // namespace qcgen::llm
