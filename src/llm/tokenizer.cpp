#include "llm/tokenizer.hpp"

#include <cctype>
#include <cmath>
#include <set>

namespace qcgen::llm {

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      // Dotted identifiers also contribute their components, so a query
      // for "runtime" matches "qiskit_ibm_runtime".
      if (current.find('.') != std::string::npos ||
          current.find('_') != std::string::npos) {
        std::string part;
        for (char c : current) {
          if (c == '.' || c == '_') {
            if (!part.empty()) tokens.push_back(part);
            part.clear();
          } else {
            part += c;
          }
        }
        if (!part.empty()) tokens.push_back(part);
      }
      current.clear();
    }
  };
  for (char raw : text) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      current += c;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::size_t count_tokens(std::string_view text) { return tokenize(text).size(); }

void Vocabulary::add_document(std::string_view text) {
  ++num_documents_;
  std::set<std::string> unique;
  for (auto& t : tokenize(text)) unique.insert(std::move(t));
  for (const auto& t : unique) ++document_frequency_[t];
}

std::size_t Vocabulary::document_frequency(const std::string& token) const {
  auto it = document_frequency_.find(token);
  return it == document_frequency_.end() ? 0 : it->second;
}

double Vocabulary::idf(const std::string& token) const {
  const double n = static_cast<double>(num_documents_);
  const double df = static_cast<double>(document_frequency(token));
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);  // BM25+ smoothing
}

}  // namespace qcgen::llm
