#pragma once
// Quantum code-generation task taxonomy.
//
// Mirrors the paper's three-tier prompt suite (Sec III-B): basic circuit
// construction, intermediate well-known algorithms (Shor, Grover), and
// advanced topics (teleportation, quantum walk, annealing) that a base
// model is expected to know little about.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcgen::llm {

/// Difficulty tier (paper Sec III-B; suite mix 47% / 24% / 29%).
enum class Tier { kBasic, kIntermediate, kAdvanced };

std::string_view tier_name(Tier tier);

/// The algorithms/workloads covered by the task suite.
enum class AlgorithmId {
  // Basic tier: syntax-focused circuit construction.
  kBellPair,
  kGhz,
  kSuperposition,       // uniform superposition over n qubits
  kSingleQubitRotation, // prepare RY(theta)|0> and measure
  kBitflipEncoding,     // 3-qubit repetition encode + measure
  kRandomNumber,        // n-qubit quantum RNG
  kSwapTest,            // swap-test overlap estimation
  kPhaseKickback,       // phase-kickback demonstration
  // Intermediate tier: canonical algorithms.
  kDeutschJozsa,
  kBernsteinVazirani,
  kGrover,
  kQft,
  kShorPeriodFinding,   // a = 7, N = 15 textbook instance
  // Advanced tier: topics beyond common training corpora.
  kTeleportation,
  kQuantumWalk,
  kQuantumAnnealing,    // trotterised Ising anneal
  kGhzParityOracle,     // parity oracle + interference readout
  kInverseQft,
};

std::string_view algorithm_name(AlgorithmId id);
Tier algorithm_tier(AlgorithmId id);
std::vector<AlgorithmId> all_algorithms();

/// One concrete generation task: an algorithm plus integer/real params.
struct TaskSpec {
  AlgorithmId algorithm = AlgorithmId::kBellPair;
  std::map<std::string, double> params;

  /// Convenience accessors with defaults.
  double param(const std::string& key, double fallback) const;
  int iparam(const std::string& key, int fallback) const;

  /// Stable identifier like "grover(n=3,marked=5)".
  std::string id() const;
};

/// Natural-language prompt text for a task (what the "user" asks).
std::string prompt_text(const TaskSpec& task);

}  // namespace qcgen::llm
