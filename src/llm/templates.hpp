#pragma once
// Gold program templates: the authoritative QasmLite implementation of
// every task in the suite. The evaluation derives reference behaviour by
// compiling and simulating these, and the simulated code-generation model
// emits (possibly perturbed) copies of them.

#include "llm/tasks.hpp"
#include "qasm/ast.hpp"

namespace qcgen::llm {

/// Builds the correct program for a task. Throws InvalidArgumentError for
/// out-of-range parameters (e.g. grover with n > 3 in this template set).
qasm::Program gold_program(const TaskSpec& task);

// AST construction helpers shared with the fault injector.
qasm::Stmt make_gate(std::string name, const std::vector<std::size_t>& qubits,
                     const std::vector<double>& params = {},
                     const std::string& qreg = "q");
qasm::Stmt make_pi_gate(std::string name, const std::vector<std::size_t>& qubits,
                        std::vector<qasm::ExprPtr> params,
                        const std::string& qreg = "q");
qasm::Stmt make_measure(std::size_t qubit, std::size_t clbit);
qasm::Stmt make_measure_all();
qasm::Stmt make_barrier();
qasm::Stmt make_if(std::size_t clbit, bool value, qasm::Stmt body);
/// pi * `num` / `den` as a symbolic expression (prints as "pi / 4" etc.).
qasm::ExprPtr pi_fraction(int num, int den);

}  // namespace qcgen::llm
