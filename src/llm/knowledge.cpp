#include "llm/knowledge.hpp"

#include <algorithm>

#include "common/cache/hash.hpp"
#include "common/error.hpp"

namespace qcgen::llm {

double KnowledgeState::semantic_for(AlgorithmId id) const {
  auto it = semantic.find(id);
  return it == semantic.end() ? 0.0 : it->second;
}

double KnowledgeState::boost(double value, double fraction) {
  require(fraction >= -1.0 && fraction <= 1.0,
          "KnowledgeState::boost: fraction in [-1,1]");
  if (fraction >= 0.0) return value + (1.0 - value) * fraction;
  return value * (1.0 + fraction);
}

std::string_view model_profile_name(ModelProfile profile) {
  switch (profile) {
    case ModelProfile::kStarCoder3B: return "starcoder-3b";
    case ModelProfile::kStarCoder7B: return "starcoder2-7b";
    case ModelProfile::kGranite20B: return "granite-20b-code";
  }
  return "?";
}

KnowledgeState base_knowledge(ModelProfile profile) {
  // Semantic priors per tier: base code models know textbook basics,
  // some canonical algorithms, and almost nothing about the advanced
  // topics the suite stresses (paper Sec III-B).
  double syntax = 0.0, api = 0.0;
  double sem_basic = 0.0, sem_inter = 0.0, sem_adv = 0.0;
  switch (profile) {
    case ModelProfile::kStarCoder3B:
      syntax = 0.45; api = 0.30;
      sem_basic = 0.62; sem_inter = 0.22; sem_adv = 0.05;
      break;
    case ModelProfile::kStarCoder7B:
      syntax = 0.52; api = 0.33;
      sem_basic = 0.66; sem_inter = 0.26; sem_adv = 0.07;
      break;
    case ModelProfile::kGranite20B:
      // The IBM reference model ships Qiskit-tuned (Table I reports it
      // with its QK fine-tuning); its base state is already strong.
      syntax = 0.83; api = 0.80;
      sem_basic = 0.78; sem_inter = 0.48; sem_adv = 0.20;
      break;
  }
  KnowledgeState k;
  k.syntax_skill = syntax;
  k.api_recency = api;
  for (AlgorithmId id : all_algorithms()) {
    switch (algorithm_tier(id)) {
      case Tier::kBasic: k.semantic[id] = sem_basic; break;
      case Tier::kIntermediate: k.semantic[id] = sem_inter; break;
      case Tier::kAdvanced: k.semantic[id] = sem_adv; break;
    }
  }
  return k;
}

FaultRates fault_rates(const KnowledgeState& knowledge, AlgorithmId algorithm,
                       double syntax_difficulty) {
  require(syntax_difficulty > 0.0, "fault_rates: difficulty must be > 0");
  const auto clamp01 = [](double p) { return std::clamp(p, 0.0, 1.0); };
  const double syn_gap = 1.0 - knowledge.syntax_skill;
  const double api_gap = 1.0 - knowledge.api_recency;
  const double sem = knowledge.semantic_for(algorithm);
  FaultRates rates;
  rates.deprecated_import = clamp01(0.30 * api_gap * syntax_difficulty);
  rates.unknown_import = clamp01(0.08 * api_gap * syntax_difficulty);
  rates.parse_corruption = clamp01(0.20 * syn_gap * syntax_difficulty);
  rates.gate_misuse = clamp01(0.24 * syn_gap * syntax_difficulty);
  rates.index_error = clamp01(0.10 * syn_gap * syntax_difficulty);
  rates.missing_measure = clamp01(0.06 * syn_gap);
  rates.semantic_slip = clamp01(0.12 * (1.0 - sem));
  return rates;
}

std::uint64_t knowledge_digest(const KnowledgeState& knowledge) noexcept {
  cache::KeyHasher hasher;
  hasher.mix(knowledge.syntax_skill).mix(knowledge.api_recency);
  hasher.mix(static_cast<std::uint64_t>(knowledge.semantic.size()));
  for (const auto& [algorithm, value] : knowledge.semantic) {
    hasher.mix(static_cast<std::uint64_t>(algorithm)).mix(value);
  }
  return hasher.digest();
}

}  // namespace qcgen::llm
