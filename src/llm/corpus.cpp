#include "llm/corpus.hpp"

#include "common/error.hpp"
#include "llm/tokenizer.hpp"
#include "qasm/language.hpp"

namespace qcgen::llm {

std::vector<Document> qiskit_api_corpus(double stale_fraction) {
  require(stale_fraction >= 0.0 && stale_fraction <= 1.0,
          "qiskit_api_corpus: stale_fraction in [0,1]");
  std::vector<Document> docs;
  const auto& registry = qasm::LanguageRegistry::current();

  // Current module documentation.
  for (const std::string& mod : registry.current_imports()) {
    Document d;
    d.id = "api:" + mod;
    d.title = "Module " + mod;
    d.text = "The module " + mod +
             " is part of the current library release. Import it with "
             "'import " + mod + ";'. It provides circuit construction, "
             "primitives execution and transpilation utilities compatible "
             "with version 1.x of the library.";
    d.freshness = DocFreshness::kCurrent;
    docs.push_back(std::move(d));
  }
  // Gate reference pages (current).
  const char* kGatePages[][2] = {
      {"h", "Hadamard gate h creates superposition; usage: h q[i];"},
      {"cx", "Controlled-NOT gate cx entangles a control and target: "
             "cx q[c], q[t];. The legacy alias cnot is deprecated."},
      {"measure", "Measurement maps a qubit to a classical bit: "
                  "measure q[i] -> c[j]; or measure_all; for all qubits."},
      {"rz", "Rotation gates rx, ry, rz take one angle parameter, e.g. "
             "rz(pi/4) q[i];. The u3 alias is deprecated; use u."},
      {"ccx", "The Toffoli gate is spelled ccx; the alias toffoli is "
              "deprecated. Usage: ccx q[a], q[b], q[t];"},
      {"swap", "swap exchanges two qubits; cswap is the controlled "
               "(Fredkin) variant whose alias fredkin is deprecated."},
  };
  for (const auto& page : kGatePages) {
    Document d;
    d.id = std::string("api:gate:") + page[0];
    d.title = std::string("Gate ") + page[0];
    d.text = page[1];
    d.freshness = DocFreshness::kCurrent;
    docs.push_back(std::move(d));
  }

  // Stale documentation: tutorials written against the pre-1.0 library
  // surface, describing removed modules as if current. Their wording
  // intentionally overlaps the generic "how do I import / run a circuit"
  // queries the generator issues, so once the stale fraction grows they
  // genuinely win retrievals and poison the context (paper Sec V-E: the
  // available documentation "is not up to date"). Multiple tutorial
  // variants exist per module; stale_fraction of the final corpus is
  // stale.
  std::vector<Document> stale;
  const char* kStaleFlavours[] = {
      "Tutorial: run your program on a simulator backend with ",
      "Guide: executing a quantum program starts with ",
      "How-to: collect counts from a backend job after ",
  };
  std::size_t flavour = 0;
  for (const std::string& mod : registry.deprecated_imports()) {
    for (std::size_t v = 0; v < std::size(kStaleFlavours); ++v) {
      Document d;
      d.id = "api:stale:" + mod + ":" + std::to_string(v);
      d.title = "Module " + mod + " (legacy tutorial)";
      d.text = std::string(kStaleFlavours[(flavour + v) % 3]) + "'import " +
               mod + ";'. The module " + mod +
               " provides gate application, measure and run helpers" +
               (v == 2 ? " compatible with this library version."
                       : " for the release this guide targets.");
      d.freshness = DocFreshness::kStale;
      stale.push_back(std::move(d));
    }
    ++flavour;
  }
  // Choose the stale count so stale/(current+stale) == stale_fraction.
  const double current = static_cast<double>(docs.size());
  const std::size_t target_stale =
      stale_fraction >= 1.0
          ? stale.size()
          : std::min(stale.size(),
                     static_cast<std::size_t>(
                         current * stale_fraction / (1.0 - stale_fraction)));
  for (std::size_t i = 0; i < target_stale; ++i) docs.push_back(stale[i]);
  return docs;
}

std::vector<Document> algorithm_guide_corpus() {
  std::vector<Document> docs;
  const auto add = [&](AlgorithmId id, std::string text) {
    Document d;
    d.id = "guide:" + std::string(algorithm_name(id));
    d.title = "Guide: " + std::string(algorithm_name(id));
    d.text = std::move(text);
    d.algorithm = id;
    docs.push_back(std::move(d));
  };
  add(AlgorithmId::kBellPair,
      "Bell pair preparation: apply a Hadamard h to qubit 0 then cx from "
      "qubit 0 to qubit 1; measuring yields correlated 00/11 outcomes.");
  add(AlgorithmId::kGhz,
      "GHZ state: Hadamard on the first qubit followed by a chain of cx "
      "gates propagating the superposition; all-zero and all-one outcomes "
      "dominate.");
  add(AlgorithmId::kSuperposition,
      "Uniform superposition: apply h to every qubit; sampling gives each "
      "bitstring with equal probability.");
  add(AlgorithmId::kSingleQubitRotation,
      "Single-qubit rotations: ry(theta) rotates |0> towards |1>; the "
      "probability of measuring 1 is sin(theta/2)^2.");
  add(AlgorithmId::kBitflipEncoding,
      "Bit-flip repetition code: copy the payload onto two ancillas with "
      "cx gates; the codeword is 000 or 111.");
  add(AlgorithmId::kRandomNumber,
      "Quantum RNG: Hadamard every qubit and measure; the register is a "
      "uniform random integer.");
  add(AlgorithmId::kSwapTest,
      "Swap test: Hadamard an ancilla, cswap the two payload states "
      "controlled on it, Hadamard again; P(0) encodes the state overlap.");
  add(AlgorithmId::kPhaseKickback,
      "Phase kickback: prepare the ancilla in |-> with x then h; a cx "
      "controlled by a superposed qubit kicks the phase back onto the "
      "control, flipping it in the Hadamard basis.");
  add(AlgorithmId::kDeutschJozsa,
      "Deutsch-Jozsa: ancilla in |->, Hadamard all inputs, apply the "
      "oracle (constant: identity; balanced: cx from every input onto the "
      "ancilla), Hadamard inputs and measure: all-zeros means constant.");
  add(AlgorithmId::kBernsteinVazirani,
      "Bernstein-Vazirani: same skeleton as Deutsch-Jozsa; the oracle "
      "applies cx from input bit i onto the ancilla whenever secret bit i "
      "is one. The measurement reveals the secret string directly.");
  add(AlgorithmId::kGrover,
      "Grover search: uniform superposition, then repeat oracle plus "
      "diffusion. The oracle phase-flips the marked state using x "
      "conjugation and a multi-controlled z; the diffusion operator is "
      "h-x-mcz-x-h on all qubits.");
  add(AlgorithmId::kQft,
      "Quantum Fourier transform: for each qubit from the top, apply h "
      "then controlled-phase cp(pi/2^k) from each lower qubit; finish by "
      "swapping the register order.");
  add(AlgorithmId::kShorPeriodFinding,
      "Shor period finding for a=7, N=15: initialise the work register to "
      "1, Hadamard the counting register, apply controlled modular "
      "multiplications (U: y -> 7y mod 15 via cswap rotation plus cx "
      "complement; U^2: y -> 4y mod 15 via two cswaps), then the inverse "
      "QFT on the counting register. Peaks appear at multiples of 2.");
  add(AlgorithmId::kTeleportation,
      "Teleportation: share a Bell pair between qubits 1 and 2, Bell-"
      "measure the payload and qubit 1, then apply classically "
      "conditioned x (on the q1 outcome) and z (on the q0 outcome) "
      "corrections to qubit 2 using if statements.");
  add(AlgorithmId::kQuantumWalk,
      "Discrete quantum walk on a 4-cycle: a coin qubit is Hadamard-"
      "flipped each step; conditional increment (ccx + cx) moves the "
      "walker one way for coin=1 and an x-conjugated decrement moves it "
      "the other way for coin=0.");
  add(AlgorithmId::kQuantumAnnealing,
      "Trotterised quantum annealing: start in the uniform superposition; "
      "alternate rzz couplings along the Ising chain with transverse rx "
      "mixing, ramping the coupling up and the mixer down; final samples "
      "concentrate on the ferromagnetic ground states 00..0 and 11..1.");
  add(AlgorithmId::kGhzParityOracle,
      "GHZ parity oracle: prepare GHZ, apply z on one qubit (a parity "
      "phase flip), uncompute the GHZ preparation and measure qubit 0; the "
      "phase converts to a deterministic bit flip.");
  add(AlgorithmId::kInverseQft,
      "Inverse QFT: run the adjoint circuit — reverse the swaps, then for "
      "each qubit apply the negated controlled phases cp(-pi/2^k) before "
      "its Hadamard. QFT followed by inverse QFT restores the input.");
  return docs;
}

std::size_t corpus_tokens(const std::vector<Document>& docs) {
  std::size_t total = 0;
  for (const Document& d : docs) total += count_tokens(d.text);
  return total;
}

}  // namespace qcgen::llm
