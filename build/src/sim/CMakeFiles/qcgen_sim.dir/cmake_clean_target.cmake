file(REMOVE_RECURSE
  "libqcgen_sim.a"
)
