# Empty compiler generated dependencies file for qcgen_sim.
# This may be replaced when dependencies are built.
