
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/circuit.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/circuit.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/circuit.cpp.o.d"
  "/root/repo/src/sim/draw.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/draw.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/draw.cpp.o.d"
  "/root/repo/src/sim/gates.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/gates.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/gates.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/statevector.cpp.o.d"
  "/root/repo/src/sim/tableau.cpp" "src/sim/CMakeFiles/qcgen_sim.dir/tableau.cpp.o" "gcc" "src/sim/CMakeFiles/qcgen_sim.dir/tableau.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qcgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
