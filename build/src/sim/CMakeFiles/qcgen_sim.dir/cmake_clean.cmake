file(REMOVE_RECURSE
  "CMakeFiles/qcgen_sim.dir/circuit.cpp.o"
  "CMakeFiles/qcgen_sim.dir/circuit.cpp.o.d"
  "CMakeFiles/qcgen_sim.dir/draw.cpp.o"
  "CMakeFiles/qcgen_sim.dir/draw.cpp.o.d"
  "CMakeFiles/qcgen_sim.dir/gates.cpp.o"
  "CMakeFiles/qcgen_sim.dir/gates.cpp.o.d"
  "CMakeFiles/qcgen_sim.dir/noise.cpp.o"
  "CMakeFiles/qcgen_sim.dir/noise.cpp.o.d"
  "CMakeFiles/qcgen_sim.dir/statevector.cpp.o"
  "CMakeFiles/qcgen_sim.dir/statevector.cpp.o.d"
  "CMakeFiles/qcgen_sim.dir/tableau.cpp.o"
  "CMakeFiles/qcgen_sim.dir/tableau.cpp.o.d"
  "libqcgen_sim.a"
  "libqcgen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
