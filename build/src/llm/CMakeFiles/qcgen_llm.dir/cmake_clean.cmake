file(REMOVE_RECURSE
  "CMakeFiles/qcgen_llm.dir/corpus.cpp.o"
  "CMakeFiles/qcgen_llm.dir/corpus.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/cot.cpp.o"
  "CMakeFiles/qcgen_llm.dir/cot.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/finetune.cpp.o"
  "CMakeFiles/qcgen_llm.dir/finetune.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/knowledge.cpp.o"
  "CMakeFiles/qcgen_llm.dir/knowledge.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/passk.cpp.o"
  "CMakeFiles/qcgen_llm.dir/passk.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/simlm.cpp.o"
  "CMakeFiles/qcgen_llm.dir/simlm.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/tasks.cpp.o"
  "CMakeFiles/qcgen_llm.dir/tasks.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/templates.cpp.o"
  "CMakeFiles/qcgen_llm.dir/templates.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/tokenizer.cpp.o"
  "CMakeFiles/qcgen_llm.dir/tokenizer.cpp.o.d"
  "CMakeFiles/qcgen_llm.dir/vectorstore.cpp.o"
  "CMakeFiles/qcgen_llm.dir/vectorstore.cpp.o.d"
  "libqcgen_llm.a"
  "libqcgen_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
