# Empty dependencies file for qcgen_llm.
# This may be replaced when dependencies are built.
