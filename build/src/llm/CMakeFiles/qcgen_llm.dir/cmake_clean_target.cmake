file(REMOVE_RECURSE
  "libqcgen_llm.a"
)
