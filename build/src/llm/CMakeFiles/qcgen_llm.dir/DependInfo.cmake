
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/corpus.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/corpus.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/corpus.cpp.o.d"
  "/root/repo/src/llm/cot.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/cot.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/cot.cpp.o.d"
  "/root/repo/src/llm/finetune.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/finetune.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/finetune.cpp.o.d"
  "/root/repo/src/llm/knowledge.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/knowledge.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/knowledge.cpp.o.d"
  "/root/repo/src/llm/passk.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/passk.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/passk.cpp.o.d"
  "/root/repo/src/llm/simlm.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/simlm.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/simlm.cpp.o.d"
  "/root/repo/src/llm/tasks.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/tasks.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/tasks.cpp.o.d"
  "/root/repo/src/llm/templates.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/templates.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/templates.cpp.o.d"
  "/root/repo/src/llm/tokenizer.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/tokenizer.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/tokenizer.cpp.o.d"
  "/root/repo/src/llm/vectorstore.cpp" "src/llm/CMakeFiles/qcgen_llm.dir/vectorstore.cpp.o" "gcc" "src/llm/CMakeFiles/qcgen_llm.dir/vectorstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qcgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/qcgen_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qcgen_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
