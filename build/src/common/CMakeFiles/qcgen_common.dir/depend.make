# Empty dependencies file for qcgen_common.
# This may be replaced when dependencies are built.
