file(REMOVE_RECURSE
  "CMakeFiles/qcgen_common.dir/json.cpp.o"
  "CMakeFiles/qcgen_common.dir/json.cpp.o.d"
  "CMakeFiles/qcgen_common.dir/logging.cpp.o"
  "CMakeFiles/qcgen_common.dir/logging.cpp.o.d"
  "CMakeFiles/qcgen_common.dir/rng.cpp.o"
  "CMakeFiles/qcgen_common.dir/rng.cpp.o.d"
  "CMakeFiles/qcgen_common.dir/stats.cpp.o"
  "CMakeFiles/qcgen_common.dir/stats.cpp.o.d"
  "CMakeFiles/qcgen_common.dir/strings.cpp.o"
  "CMakeFiles/qcgen_common.dir/strings.cpp.o.d"
  "CMakeFiles/qcgen_common.dir/table.cpp.o"
  "CMakeFiles/qcgen_common.dir/table.cpp.o.d"
  "libqcgen_common.a"
  "libqcgen_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
