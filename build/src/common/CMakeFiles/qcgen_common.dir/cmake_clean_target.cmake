file(REMOVE_RECURSE
  "libqcgen_common.a"
)
