
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qec/decoder.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/decoder.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/decoder.cpp.o.d"
  "/root/repo/src/qec/lifetime.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/lifetime.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/lifetime.cpp.o.d"
  "/root/repo/src/qec/logical_error.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/logical_error.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/logical_error.cpp.o.d"
  "/root/repo/src/qec/lookup_decoder.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/lookup_decoder.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/lookup_decoder.cpp.o.d"
  "/root/repo/src/qec/matching_graph.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/matching_graph.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/matching_graph.cpp.o.d"
  "/root/repo/src/qec/mwpm_decoder.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/mwpm_decoder.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/mwpm_decoder.cpp.o.d"
  "/root/repo/src/qec/pauli_frame.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/pauli_frame.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/pauli_frame.cpp.o.d"
  "/root/repo/src/qec/repetition.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/repetition.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/repetition.cpp.o.d"
  "/root/repo/src/qec/steane.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/steane.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/steane.cpp.o.d"
  "/root/repo/src/qec/surface_code.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/surface_code.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/surface_code.cpp.o.d"
  "/root/repo/src/qec/syndrome_circuit.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/syndrome_circuit.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/syndrome_circuit.cpp.o.d"
  "/root/repo/src/qec/union_find_decoder.cpp" "src/qec/CMakeFiles/qcgen_qec.dir/union_find_decoder.cpp.o" "gcc" "src/qec/CMakeFiles/qcgen_qec.dir/union_find_decoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qcgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qcgen_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
