file(REMOVE_RECURSE
  "libqcgen_qec.a"
)
