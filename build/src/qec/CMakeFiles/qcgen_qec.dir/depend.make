# Empty dependencies file for qcgen_qec.
# This may be replaced when dependencies are built.
