file(REMOVE_RECURSE
  "CMakeFiles/qcgen_qec.dir/decoder.cpp.o"
  "CMakeFiles/qcgen_qec.dir/decoder.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/lifetime.cpp.o"
  "CMakeFiles/qcgen_qec.dir/lifetime.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/logical_error.cpp.o"
  "CMakeFiles/qcgen_qec.dir/logical_error.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/lookup_decoder.cpp.o"
  "CMakeFiles/qcgen_qec.dir/lookup_decoder.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/matching_graph.cpp.o"
  "CMakeFiles/qcgen_qec.dir/matching_graph.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/mwpm_decoder.cpp.o"
  "CMakeFiles/qcgen_qec.dir/mwpm_decoder.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/pauli_frame.cpp.o"
  "CMakeFiles/qcgen_qec.dir/pauli_frame.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/repetition.cpp.o"
  "CMakeFiles/qcgen_qec.dir/repetition.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/steane.cpp.o"
  "CMakeFiles/qcgen_qec.dir/steane.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/surface_code.cpp.o"
  "CMakeFiles/qcgen_qec.dir/surface_code.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/syndrome_circuit.cpp.o"
  "CMakeFiles/qcgen_qec.dir/syndrome_circuit.cpp.o.d"
  "CMakeFiles/qcgen_qec.dir/union_find_decoder.cpp.o"
  "CMakeFiles/qcgen_qec.dir/union_find_decoder.cpp.o.d"
  "libqcgen_qec.a"
  "libqcgen_qec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
