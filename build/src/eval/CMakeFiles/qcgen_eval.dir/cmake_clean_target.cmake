file(REMOVE_RECURSE
  "libqcgen_eval.a"
)
