# Empty dependencies file for qcgen_eval.
# This may be replaced when dependencies are built.
