file(REMOVE_RECURSE
  "CMakeFiles/qcgen_eval.dir/judge.cpp.o"
  "CMakeFiles/qcgen_eval.dir/judge.cpp.o.d"
  "CMakeFiles/qcgen_eval.dir/runner.cpp.o"
  "CMakeFiles/qcgen_eval.dir/runner.cpp.o.d"
  "CMakeFiles/qcgen_eval.dir/suite.cpp.o"
  "CMakeFiles/qcgen_eval.dir/suite.cpp.o.d"
  "libqcgen_eval.a"
  "libqcgen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
