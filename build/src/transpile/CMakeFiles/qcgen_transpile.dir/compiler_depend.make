# Empty compiler generated dependencies file for qcgen_transpile.
# This may be replaced when dependencies are built.
