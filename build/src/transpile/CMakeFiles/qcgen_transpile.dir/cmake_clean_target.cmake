file(REMOVE_RECURSE
  "libqcgen_transpile.a"
)
