file(REMOVE_RECURSE
  "CMakeFiles/qcgen_transpile.dir/decompose.cpp.o"
  "CMakeFiles/qcgen_transpile.dir/decompose.cpp.o.d"
  "CMakeFiles/qcgen_transpile.dir/layout.cpp.o"
  "CMakeFiles/qcgen_transpile.dir/layout.cpp.o.d"
  "CMakeFiles/qcgen_transpile.dir/optimize.cpp.o"
  "CMakeFiles/qcgen_transpile.dir/optimize.cpp.o.d"
  "CMakeFiles/qcgen_transpile.dir/router.cpp.o"
  "CMakeFiles/qcgen_transpile.dir/router.cpp.o.d"
  "CMakeFiles/qcgen_transpile.dir/transpiler.cpp.o"
  "CMakeFiles/qcgen_transpile.dir/transpiler.cpp.o.d"
  "libqcgen_transpile.a"
  "libqcgen_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
