
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/codegen_agent.cpp" "src/agents/CMakeFiles/qcgen_agents.dir/codegen_agent.cpp.o" "gcc" "src/agents/CMakeFiles/qcgen_agents.dir/codegen_agent.cpp.o.d"
  "/root/repo/src/agents/pipeline.cpp" "src/agents/CMakeFiles/qcgen_agents.dir/pipeline.cpp.o" "gcc" "src/agents/CMakeFiles/qcgen_agents.dir/pipeline.cpp.o.d"
  "/root/repo/src/agents/qec_agent.cpp" "src/agents/CMakeFiles/qcgen_agents.dir/qec_agent.cpp.o" "gcc" "src/agents/CMakeFiles/qcgen_agents.dir/qec_agent.cpp.o.d"
  "/root/repo/src/agents/semantic_agent.cpp" "src/agents/CMakeFiles/qcgen_agents.dir/semantic_agent.cpp.o" "gcc" "src/agents/CMakeFiles/qcgen_agents.dir/semantic_agent.cpp.o.d"
  "/root/repo/src/agents/topology.cpp" "src/agents/CMakeFiles/qcgen_agents.dir/topology.cpp.o" "gcc" "src/agents/CMakeFiles/qcgen_agents.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qcgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/qcgen_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/qcgen_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qcgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/qec/CMakeFiles/qcgen_qec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
