file(REMOVE_RECURSE
  "libqcgen_agents.a"
)
