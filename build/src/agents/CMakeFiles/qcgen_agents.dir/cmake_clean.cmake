file(REMOVE_RECURSE
  "CMakeFiles/qcgen_agents.dir/codegen_agent.cpp.o"
  "CMakeFiles/qcgen_agents.dir/codegen_agent.cpp.o.d"
  "CMakeFiles/qcgen_agents.dir/pipeline.cpp.o"
  "CMakeFiles/qcgen_agents.dir/pipeline.cpp.o.d"
  "CMakeFiles/qcgen_agents.dir/qec_agent.cpp.o"
  "CMakeFiles/qcgen_agents.dir/qec_agent.cpp.o.d"
  "CMakeFiles/qcgen_agents.dir/semantic_agent.cpp.o"
  "CMakeFiles/qcgen_agents.dir/semantic_agent.cpp.o.d"
  "CMakeFiles/qcgen_agents.dir/topology.cpp.o"
  "CMakeFiles/qcgen_agents.dir/topology.cpp.o.d"
  "libqcgen_agents.a"
  "libqcgen_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
