# Empty compiler generated dependencies file for qcgen_agents.
# This may be replaced when dependencies are built.
