file(REMOVE_RECURSE
  "libqcgen_qasm.a"
)
