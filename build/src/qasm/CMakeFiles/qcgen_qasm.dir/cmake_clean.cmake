file(REMOVE_RECURSE
  "CMakeFiles/qcgen_qasm.dir/analyzer.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/analyzer.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/builder.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/builder.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/language.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/language.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/lexer.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/lexer.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/openqasm.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/openqasm.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/parser.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/parser.cpp.o.d"
  "CMakeFiles/qcgen_qasm.dir/printer.cpp.o"
  "CMakeFiles/qcgen_qasm.dir/printer.cpp.o.d"
  "libqcgen_qasm.a"
  "libqcgen_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcgen_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
