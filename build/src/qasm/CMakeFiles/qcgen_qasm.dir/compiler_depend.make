# Empty compiler generated dependencies file for qcgen_qasm.
# This may be replaced when dependencies are built.
