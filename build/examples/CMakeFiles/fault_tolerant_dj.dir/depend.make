# Empty dependencies file for fault_tolerant_dj.
# This may be replaced when dependencies are built.
