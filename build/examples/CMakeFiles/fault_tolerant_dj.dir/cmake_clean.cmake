file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_dj.dir/fault_tolerant_dj.cpp.o"
  "CMakeFiles/fault_tolerant_dj.dir/fault_tolerant_dj.cpp.o.d"
  "fault_tolerant_dj"
  "fault_tolerant_dj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_dj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
