# Empty compiler generated dependencies file for grover_pipeline.
# This may be replaced when dependencies are built.
