file(REMOVE_RECURSE
  "CMakeFiles/grover_pipeline.dir/grover_pipeline.cpp.o"
  "CMakeFiles/grover_pipeline.dir/grover_pipeline.cpp.o.d"
  "grover_pipeline"
  "grover_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
