file(REMOVE_RECURSE
  "CMakeFiles/qec_playground.dir/qec_playground.cpp.o"
  "CMakeFiles/qec_playground.dir/qec_playground.cpp.o.d"
  "qec_playground"
  "qec_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
