# Empty compiler generated dependencies file for qec_playground.
# This may be replaced when dependencies are built.
