file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decoders.dir/bench_ablation_decoders.cpp.o"
  "CMakeFiles/bench_ablation_decoders.dir/bench_ablation_decoders.cpp.o.d"
  "bench_ablation_decoders"
  "bench_ablation_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
