# Empty dependencies file for bench_ablation_decoders.
# This may be replaced when dependencies are built.
