file(REMOVE_RECURSE
  "CMakeFiles/bench_error_taxonomy.dir/bench_error_taxonomy.cpp.o"
  "CMakeFiles/bench_error_taxonomy.dir/bench_error_taxonomy.cpp.o.d"
  "bench_error_taxonomy"
  "bench_error_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
