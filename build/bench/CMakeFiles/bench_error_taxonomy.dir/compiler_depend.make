# Empty compiler generated dependencies file for bench_error_taxonomy.
# This may be replaced when dependencies are built.
