# Empty compiler generated dependencies file for bench_multipass.
# This may be replaced when dependencies are built.
