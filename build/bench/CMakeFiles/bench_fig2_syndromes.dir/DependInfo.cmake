
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_syndromes.cpp" "bench/CMakeFiles/bench_fig2_syndromes.dir/bench_fig2_syndromes.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_syndromes.dir/bench_fig2_syndromes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/qcgen_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/qcgen_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/qcgen_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/qec/CMakeFiles/qcgen_qec.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/qcgen_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qcgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qcgen_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qcgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
