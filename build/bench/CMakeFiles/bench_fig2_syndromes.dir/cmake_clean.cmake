file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_syndromes.dir/bench_fig2_syndromes.cpp.o"
  "CMakeFiles/bench_fig2_syndromes.dir/bench_fig2_syndromes.cpp.o.d"
  "bench_fig2_syndromes"
  "bench_fig2_syndromes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_syndromes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
