# Empty compiler generated dependencies file for bench_fig4_qec_dj.
# This may be replaced when dependencies are built.
