file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_techniques.dir/bench_fig3_techniques.cpp.o"
  "CMakeFiles/bench_fig3_techniques.dir/bench_fig3_techniques.cpp.o.d"
  "bench_fig3_techniques"
  "bench_fig3_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
