# Empty dependencies file for bench_ablation_rag.
# This may be replaced when dependencies are built.
