file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rag.dir/bench_ablation_rag.cpp.o"
  "CMakeFiles/bench_ablation_rag.dir/bench_ablation_rag.cpp.o.d"
  "bench_ablation_rag"
  "bench_ablation_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
