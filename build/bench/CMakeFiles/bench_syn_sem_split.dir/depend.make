# Empty dependencies file for bench_syn_sem_split.
# This may be replaced when dependencies are built.
