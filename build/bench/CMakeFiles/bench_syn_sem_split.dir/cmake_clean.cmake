file(REMOVE_RECURSE
  "CMakeFiles/bench_syn_sem_split.dir/bench_syn_sem_split.cpp.o"
  "CMakeFiles/bench_syn_sem_split.dir/bench_syn_sem_split.cpp.o.d"
  "bench_syn_sem_split"
  "bench_syn_sem_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syn_sem_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
