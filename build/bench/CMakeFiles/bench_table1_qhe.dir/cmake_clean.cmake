file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_qhe.dir/bench_table1_qhe.cpp.o"
  "CMakeFiles/bench_table1_qhe.dir/bench_table1_qhe.cpp.o.d"
  "bench_table1_qhe"
  "bench_table1_qhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_qhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
