# Empty dependencies file for bench_table1_qhe.
# This may be replaced when dependencies are built.
