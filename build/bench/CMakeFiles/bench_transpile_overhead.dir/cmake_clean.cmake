file(REMOVE_RECURSE
  "CMakeFiles/bench_transpile_overhead.dir/bench_transpile_overhead.cpp.o"
  "CMakeFiles/bench_transpile_overhead.dir/bench_transpile_overhead.cpp.o.d"
  "bench_transpile_overhead"
  "bench_transpile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transpile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
