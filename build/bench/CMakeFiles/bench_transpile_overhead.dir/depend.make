# Empty dependencies file for bench_transpile_overhead.
# This may be replaced when dependencies are built.
