file(REMOVE_RECURSE
  "CMakeFiles/test_decoders.dir/test_decoders.cpp.o"
  "CMakeFiles/test_decoders.dir/test_decoders.cpp.o.d"
  "test_decoders"
  "test_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
