file(REMOVE_RECURSE
  "CMakeFiles/test_llm_simlm.dir/test_llm_simlm.cpp.o"
  "CMakeFiles/test_llm_simlm.dir/test_llm_simlm.cpp.o.d"
  "test_llm_simlm"
  "test_llm_simlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llm_simlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
