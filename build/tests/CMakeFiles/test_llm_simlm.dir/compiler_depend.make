# Empty compiler generated dependencies file for test_llm_simlm.
# This may be replaced when dependencies are built.
