file(REMOVE_RECURSE
  "CMakeFiles/test_steane.dir/test_steane.cpp.o"
  "CMakeFiles/test_steane.dir/test_steane.cpp.o.d"
  "test_steane"
  "test_steane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
