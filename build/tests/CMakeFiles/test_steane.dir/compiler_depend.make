# Empty compiler generated dependencies file for test_steane.
# This may be replaced when dependencies are built.
