file(REMOVE_RECURSE
  "CMakeFiles/test_openqasm.dir/test_openqasm.cpp.o"
  "CMakeFiles/test_openqasm.dir/test_openqasm.cpp.o.d"
  "test_openqasm"
  "test_openqasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openqasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
