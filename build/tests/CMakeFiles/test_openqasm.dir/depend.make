# Empty dependencies file for test_openqasm.
# This may be replaced when dependencies are built.
