# Empty dependencies file for test_qasm_lexer.
# This may be replaced when dependencies are built.
