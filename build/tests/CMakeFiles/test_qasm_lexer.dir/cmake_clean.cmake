file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_lexer.dir/test_qasm_lexer.cpp.o"
  "CMakeFiles/test_qasm_lexer.dir/test_qasm_lexer.cpp.o.d"
  "test_qasm_lexer"
  "test_qasm_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
