file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_roundtrip.dir/test_qasm_roundtrip.cpp.o"
  "CMakeFiles/test_qasm_roundtrip.dir/test_qasm_roundtrip.cpp.o.d"
  "test_qasm_roundtrip"
  "test_qasm_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
