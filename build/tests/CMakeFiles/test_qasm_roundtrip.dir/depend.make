# Empty dependencies file for test_qasm_roundtrip.
# This may be replaced when dependencies are built.
