file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_parser.dir/test_qasm_parser.cpp.o"
  "CMakeFiles/test_qasm_parser.dir/test_qasm_parser.cpp.o.d"
  "test_qasm_parser"
  "test_qasm_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
