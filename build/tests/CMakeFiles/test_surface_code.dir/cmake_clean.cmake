file(REMOVE_RECURSE
  "CMakeFiles/test_surface_code.dir/test_surface_code.cpp.o"
  "CMakeFiles/test_surface_code.dir/test_surface_code.cpp.o.d"
  "test_surface_code"
  "test_surface_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
