file(REMOVE_RECURSE
  "CMakeFiles/test_qasm_analyzer.dir/test_qasm_analyzer.cpp.o"
  "CMakeFiles/test_qasm_analyzer.dir/test_qasm_analyzer.cpp.o.d"
  "test_qasm_analyzer"
  "test_qasm_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
