# Empty dependencies file for test_qasm_analyzer.
# This may be replaced when dependencies are built.
