file(REMOVE_RECURSE
  "CMakeFiles/test_optimize_draw.dir/test_optimize_draw.cpp.o"
  "CMakeFiles/test_optimize_draw.dir/test_optimize_draw.cpp.o.d"
  "test_optimize_draw"
  "test_optimize_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimize_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
