# Empty dependencies file for test_optimize_draw.
# This may be replaced when dependencies are built.
