file(REMOVE_RECURSE
  "CMakeFiles/test_qec_logical.dir/test_qec_logical.cpp.o"
  "CMakeFiles/test_qec_logical.dir/test_qec_logical.cpp.o.d"
  "test_qec_logical"
  "test_qec_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qec_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
