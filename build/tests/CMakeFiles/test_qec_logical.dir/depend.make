# Empty dependencies file for test_qec_logical.
# This may be replaced when dependencies are built.
