file(REMOVE_RECURSE
  "CMakeFiles/test_tableau.dir/test_tableau.cpp.o"
  "CMakeFiles/test_tableau.dir/test_tableau.cpp.o.d"
  "test_tableau"
  "test_tableau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tableau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
