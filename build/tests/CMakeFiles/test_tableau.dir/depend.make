# Empty dependencies file for test_tableau.
# This may be replaced when dependencies are built.
