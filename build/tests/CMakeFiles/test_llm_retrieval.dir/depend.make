# Empty dependencies file for test_llm_retrieval.
# This may be replaced when dependencies are built.
