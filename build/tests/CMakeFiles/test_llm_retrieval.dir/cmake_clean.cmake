file(REMOVE_RECURSE
  "CMakeFiles/test_llm_retrieval.dir/test_llm_retrieval.cpp.o"
  "CMakeFiles/test_llm_retrieval.dir/test_llm_retrieval.cpp.o.d"
  "test_llm_retrieval"
  "test_llm_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llm_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
