#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by the bench harness.

Usage:
  scripts/validate_bench_json.py FILE [FILE ...]
      Schema-check each report (schema_version 2..7, legacy 1 accepted;
      see bench/harness.hpp). Rejects non-finite numerics (NaN/Infinity
      are not valid JSON) and, when present, validates the "trace"
      section, the schema-3 chaos sections ("trial_failures" and
      "degradations"), the schema-4 "resources" section (per-workload
      static resource counts), the schema-5 "serving" section
      (per-workload admission counts, latency quantiles and request-id-
      sorted shed/degradation event arrays), the schema-6 "cache"
      section (per-layer live hit/miss stats plus per-policy replayed
      hit rates, with count-conservation and Belady-optimality checks)
      and the schema-7 "lifecycle" section (per-workload deadline /
      cancellation outcome counts conserving against admission, budget-
      consumption quantiles, and per-site circuit-breaker transition
      chains replayed against the closed/open/half-open state machine).

  scripts/validate_bench_json.py --compare A.json B.json
      Assert two reports from the same bench/config are identical modulo
      the "timing" subtree and config.threads — the determinism contract
      of the parallel evaluation engine.

Exits non-zero on the first malformed or mismatching report. Uses only
the Python standard library.
"""

import json
import math
import sys

SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6, 7)

# Legal circuit-breaker transitions (serve/breaker.hpp): closed trips
# open, open thaws half-open after the cooldown, a half-open probe
# either re-opens or closes the breaker.
BREAKER_STATES = ("closed", "open", "half-open")
BREAKER_EDGES = {
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "open"),
    ("half-open", "closed"),
}

# Per-row lifecycle outcome counters; all non-negative exact ints.
LIFECYCLE_COUNT_KEYS = (
    "requests", "deadline_exceeded", "cancelled",
    "budget_pressure_degradations", "breaker_short_circuits",
    "breaker_probes",
)

# The replacement policies every schema-6 cache replay must cover, and
# the counter keys of one PolicyStats blob (live or replayed).
CACHE_POLICY_KEYS = ("lru", "lfu", "lti")
CACHE_STAT_KEYS = ("lookups", "hits", "misses", "inserts", "evictions")

# Required keys of each schema-4 "resources" row; every one is a count
# from the static resource-analysis engine (qasm/analysis) and must be a
# non-negative integer.
RESOURCE_COUNT_KEYS = (
    "qubits", "qubits_used", "gate_count", "t_count", "ccx_count",
    "rotation_count", "two_qubit_count", "non_clifford_count",
    "measure_count", "depth", "t_depth",
)


def fail(msg: str) -> None:
    print(f"validate_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def _reject_constant(token: str):
    # Python's json accepts NaN/Infinity by default; real JSON does not,
    # and a NaN in a report poisons every downstream comparison.
    raise ValueError(f"non-finite numeric literal {token!r}")


def check_finite(path: str, value, where: str = "$") -> None:
    if isinstance(value, float) and not math.isfinite(value):
        fail(f"{path}: non-finite number at {where}")
    elif isinstance(value, dict):
        for key, item in value.items():
            check_finite(path, item, f"{where}.{key}")
    elif isinstance(value, list):
        for i, item in enumerate(value):
            check_finite(path, item, f"{where}[{i}]")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh, parse_constant=_reject_constant)
    except (OSError, ValueError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be a JSON object")
    check_finite(path, doc)
    return doc


def check_schema(path: str, doc: dict) -> None:
    if doc.get("schema_version") not in SCHEMA_VERSIONS:
        fail(f"{path}: schema_version must be one of {SCHEMA_VERSIONS}, "
             f"got {doc.get('schema_version')!r}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(f"{path}: 'bench' must be a non-empty string")

    config = doc.get("config")
    if not isinstance(config, dict):
        fail(f"{path}: 'config' must be an object")
    for key, kind in (("samples", (int, float)), ("seed", (int, float)),
                      ("threads", (int, float)), ("quick", bool)):
        if key not in config:
            fail(f"{path}: config.{key} missing")
        if not isinstance(config[key], kind):
            fail(f"{path}: config.{key} has wrong type "
                 f"({type(config[key]).__name__})")

    timing = doc.get("timing")
    if not isinstance(timing, dict):
        fail(f"{path}: 'timing' must be an object")
    for key in ("wall_seconds", "trials", "trials_per_second"):
        if not isinstance(timing.get(key), (int, float)):
            fail(f"{path}: timing.{key} must be a number")
    if timing["wall_seconds"] < 0:
        fail(f"{path}: timing.wall_seconds is negative")
    if timing["trials"] < 0:
        fail(f"{path}: timing.trials is negative")

    if not isinstance(doc.get("results"), dict):
        fail(f"{path}: 'results' must be an object")

    if "trace" in doc:
        check_trace(path, doc["trace"])

    if doc["schema_version"] >= 3:
        check_chaos_sections(path, doc)
    else:
        for key in ("trial_failures", "degradations"):
            if key in doc:
                fail(f"{path}: '{key}' requires schema_version >= 3")

    if doc["schema_version"] >= 4:
        check_resources(path, doc)
    elif "resources" in doc:
        fail(f"{path}: 'resources' requires schema_version >= 4")

    if doc["schema_version"] >= 5:
        check_serving(path, doc)
    elif "serving" in doc:
        fail(f"{path}: 'serving' requires schema_version >= 5")

    if doc["schema_version"] >= 6:
        # Mandatory at schema 6. Schema-7 chaos-armed runs skip the
        # cache study (fault injection would poison the replay trace),
        # so from 7 on the section is validated only when present.
        if doc["schema_version"] == 6 or "cache" in doc:
            check_cache(path, doc)
    elif "cache" in doc:
        fail(f"{path}: 'cache' requires schema_version >= 6")

    if doc["schema_version"] >= 7:
        check_lifecycle(path, doc)
    elif "lifecycle" in doc:
        fail(f"{path}: 'lifecycle' requires schema_version >= 7")


def check_trace(path: str, trace) -> None:
    """Validates the deterministic trace summary written under --trace."""
    if not isinstance(trace, dict):
        fail(f"{path}: 'trace' must be an object")
    for section in ("spans", "counters", "histograms"):
        if not isinstance(trace.get(section), dict):
            fail(f"{path}: trace.{section} must be an object")
    for name, count in trace["spans"].items():
        if not isinstance(count, int) or count < 0:
            fail(f"{path}: trace.spans.{name} must be a non-negative int")
    for name, total in trace["counters"].items():
        if not isinstance(total, int):
            fail(f"{path}: trace.counters.{name} must be an int "
                 f"(exact integers; doubles lose precision past 2**53)")
    for name, hist in trace["histograms"].items():
        if not isinstance(hist, dict):
            fail(f"{path}: trace.histograms.{name} must be an object")
        for key in ("count", "sum", "min", "max"):
            if key not in hist:
                fail(f"{path}: trace.histograms.{name}.{key} missing")
        if not isinstance(hist["count"], int) or hist["count"] < 0:
            fail(f"{path}: trace.histograms.{name}.count must be a "
                 f"non-negative int")


def check_chaos_sections(path: str, doc: dict) -> None:
    """Validates the schema-3 chaos sections (see eval/runner.hpp:
    trial_failures_to_json / degradations_to_json). Both arrays are
    deterministic for a fixed (seed, samples, scenario), so the
    --compare mode includes them."""
    failures = doc.get("trial_failures")
    if not isinstance(failures, list):
        fail(f"{path}: 'trial_failures' must be an array (schema 3)")
    for i, entry in enumerate(failures):
        if not isinstance(entry, dict):
            fail(f"{path}: trial_failures[{i}] must be an object")
        for key, kind in (("case", int), ("sample", int), ("stage", str),
                          ("site", str), ("retries", int), ("what", str)):
            if not isinstance(entry.get(key), kind):
                fail(f"{path}: trial_failures[{i}].{key} must be "
                     f"{kind.__name__}")
        if entry["retries"] < 0:
            fail(f"{path}: trial_failures[{i}].retries is negative")
        if not entry["stage"]:
            fail(f"{path}: trial_failures[{i}].stage is empty")

    degradations = doc.get("degradations")
    if not isinstance(degradations, list):
        fail(f"{path}: 'degradations' must be an array (schema 3)")
    for i, entry in enumerate(degradations):
        if not isinstance(entry, dict):
            fail(f"{path}: degradations[{i}] must be an object")
        for key, kind in (("case", int), ("sample", int), ("pass", int),
                          ("stage", str), ("from", str), ("to", str),
                          ("reason", str)):
            if not isinstance(entry.get(key), kind):
                fail(f"{path}: degradations[{i}].{key} must be "
                     f"{kind.__name__}")


def check_resources(path: str, doc: dict) -> None:
    """Validates the schema-4 "resources" section: one row per workload,
    each a static resource digest (see qasm/analysis/resources.hpp).
    The section is fully deterministic, so --compare includes it."""
    resources = doc.get("resources")
    if not isinstance(resources, list):
        fail(f"{path}: 'resources' must be an array (schema 4)")
    for i, entry in enumerate(resources):
        if not isinstance(entry, dict):
            fail(f"{path}: resources[{i}] must be an object")
        workload = entry.get("workload")
        if not isinstance(workload, str) or not workload:
            fail(f"{path}: resources[{i}].workload must be a non-empty "
                 f"string")
        for key in RESOURCE_COUNT_KEYS:
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: resources[{i}].{key} must be an int "
                     f"(exact counts; got {type(value).__name__})")
            if value < 0:
                fail(f"{path}: resources[{i}].{key} is negative")
        if entry["qubits_used"] > entry["qubits"]:
            fail(f"{path}: resources[{i}]: qubits_used exceeds qubits")
        if entry["t_depth"] > entry["depth"]:
            fail(f"{path}: resources[{i}]: t_depth exceeds depth")


def check_serving(path: str, doc: dict) -> None:
    """Validates the schema-5 "serving" section: one row per workload
    (see serve/report.hpp ServingSummary::to_json). Everything here —
    counts, virtual-time latency quantiles, shed/degradation events — is
    deterministic at any --threads value, so --compare includes it;
    wall-clock serving latency lives under "timing". From schema 7 the
    rows also carry deadline_exceeded / cancelled outcome counts and the
    admission conservation law widens to include them."""
    schema = doc["schema_version"]
    serving = doc.get("serving")
    if not isinstance(serving, dict):
        fail(f"{path}: 'serving' must be an object (schema 5)")
    rows = serving.get("rows")
    if not isinstance(rows, list):
        fail(f"{path}: serving.rows must be an array")
    for i, row in enumerate(rows):
        where = f"serving.rows[{i}]"
        if not isinstance(row, dict):
            fail(f"{path}: {where} must be an object")
        mix = row.get("mix")
        if not isinstance(mix, str) or not mix:
            fail(f"{path}: {where}.mix must be a non-empty string")
        if not isinstance(row.get("rate"), (int, float)) or row["rate"] <= 0:
            fail(f"{path}: {where}.rate must be a positive number")
        count_keys = ["requests", "completed", "shed", "failed",
                      "semantic_ok", "admitted_full", "admitted_no_rag",
                      "admitted_static_only"]
        if schema >= 7:
            count_keys += ["deadline_exceeded", "cancelled"]
        for key in count_keys:
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: {where}.{key} must be an int")
            if value < 0:
                fail(f"{path}: {where}.{key} is negative")
        admitted = (row["admitted_full"] + row["admitted_no_rag"]
                    + row["admitted_static_only"])
        if admitted + row["shed"] != row["requests"]:
            fail(f"{path}: {where}: admission counts ({admitted} admitted "
                 f"+ {row['shed']} shed) do not sum to requests "
                 f"({row['requests']})")
        # Every admitted request resolves to exactly one outcome: before
        # schema 7 only completed/failed existed; from 7 on deadline and
        # cancellation outcomes are first-class and must conserve too.
        resolved = row["completed"] + row["failed"]
        if schema >= 7:
            resolved += row["deadline_exceeded"] + row["cancelled"]
            if resolved != admitted:
                fail(f"{path}: {where}: completed + failed + "
                     f"deadline_exceeded + cancelled != admitted")
        elif resolved != admitted:
            fail(f"{path}: {where}: completed + failed != admitted")
        if row["semantic_ok"] > row["completed"]:
            fail(f"{path}: {where}: semantic_ok exceeds completed")

        quantiles = row.get("virtual_latency")
        if not isinstance(quantiles, dict):
            fail(f"{path}: {where}.virtual_latency must be an object")
        for key in ("p50", "p90", "p99", "p999", "mean", "max"):
            value = quantiles.get(key)
            # Finiteness was already enforced globally by check_finite.
            if not isinstance(value, (int, float)):
                fail(f"{path}: {where}.virtual_latency.{key} must be a "
                     f"number")
            if value < 0:
                fail(f"{path}: {where}.virtual_latency.{key} is negative")
        if not (quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]
                <= quantiles["p999"] <= quantiles["max"]):
            fail(f"{path}: {where}.virtual_latency quantiles are not "
                 f"monotonic")

        for section, keys in (("shed_events", ("request", "arrival_vt",
                                               "depth")),
                              ("degradation_events",
                               ("request", "arrival_vt", "depth", "stage",
                                "from", "to"))):
            events = row.get(section)
            if not isinstance(events, list):
                fail(f"{path}: {where}.{section} must be an array")
            previous = -1
            for j, event in enumerate(events):
                if not isinstance(event, dict):
                    fail(f"{path}: {where}.{section}[{j}] must be an object")
                for key in keys:
                    if key not in event:
                        fail(f"{path}: {where}.{section}[{j}].{key} missing")
                request = event["request"]
                if not isinstance(request, int) or request < 0:
                    fail(f"{path}: {where}.{section}[{j}].request must be a "
                         f"non-negative int")
                # Sorted by request id (non-strict: a static-only
                # admission records two degradation rungs for one id).
                if request < previous:
                    fail(f"{path}: {where}.{section} not sorted by request "
                         f"id at [{j}]")
                previous = request
        if len(row["shed_events"]) != row["shed"]:
            fail(f"{path}: {where}: shed_events length != shed count")


def check_policy_stats(path: str, where: str, stats) -> None:
    """One PolicyStats blob: non-negative exact counters obeying the
    conservation laws (hits + misses == lookups, inserts <= misses —
    every insert is a resolved miss, a failed compute is a miss that
    never inserts — evictions <= inserts), hit_rate in [0, 1]."""
    if not isinstance(stats, dict):
        fail(f"{path}: {where} must be an object")
    for key in CACHE_STAT_KEYS:
        value = stats.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{path}: {where}.{key} must be an int (exact counters)")
        if value < 0:
            fail(f"{path}: {where}.{key} is negative")
    if stats["hits"] + stats["misses"] != stats["lookups"]:
        fail(f"{path}: {where}: hits + misses != lookups")
    if stats["inserts"] > stats["misses"]:
        fail(f"{path}: {where}: inserts exceed misses")
    if stats["evictions"] > stats["inserts"]:
        fail(f"{path}: {where}: evictions exceed inserts")
    rate = stats.get("hit_rate")
    if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
        fail(f"{path}: {where}.hit_rate must be a number in [0, 1]")


def check_cache(path: str, doc: dict) -> None:
    """Validates the schema-6 "cache" section: one study per case mix,
    each with one row per memoization layer carrying the live unbounded-
    cache stats and the per-policy replayed stats at the reported
    capacity. Everything here derives from the canonical (request-id,
    sequence)-sorted access trace, so it is deterministic at any
    --threads value and --compare includes it; uncached-vs-cached
    wall-clock speedups live under "timing"."""
    cache = doc.get("cache")
    if not isinstance(cache, dict):
        fail(f"{path}: 'cache' must be an object (schema 6)")
    studies = cache.get("studies")
    if not isinstance(studies, list) or not studies:
        fail(f"{path}: cache.studies must be a non-empty array")
    for i, study in enumerate(studies):
        where = f"cache.studies[{i}]"
        if not isinstance(study, dict):
            fail(f"{path}: {where} must be an object")
        mix = study.get("mix")
        if not isinstance(mix, str) or not mix:
            fail(f"{path}: {where}.mix must be a non-empty string")
        layers = study.get("layers")
        if not isinstance(layers, list) or not layers:
            fail(f"{path}: {where}.layers must be a non-empty array")
        for j, layer in enumerate(layers):
            lw = f"{where}.layers[{j}]"
            if not isinstance(layer, dict):
                fail(f"{path}: {lw} must be an object")
            if not isinstance(layer.get("layer"), str) or not layer["layer"]:
                fail(f"{path}: {lw}.layer must be a non-empty string")
            check_policy_stats(path, f"{lw}.live", layer.get("live"))
            for key in ("unique_keys", "trace_length", "replay_capacity"):
                value = layer.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    fail(f"{path}: {lw}.{key} must be an int")
                if value < 0:
                    fail(f"{path}: {lw}.{key} is negative")
            # Live caches are unbounded: every unique key misses exactly
            # once and nothing is ever evicted.
            live = layer["live"]
            if live["misses"] != layer["unique_keys"]:
                fail(f"{path}: {lw}: live misses != unique_keys (live "
                     f"caches must be unbounded)")
            if live["evictions"] != 0:
                fail(f"{path}: {lw}: live cache reported evictions")
            if layer["trace_length"] != live["lookups"]:
                fail(f"{path}: {lw}: trace_length != live lookups")
            if layer["unique_keys"] > layer["trace_length"]:
                fail(f"{path}: {lw}: unique_keys exceed trace_length")
            replay = layer.get("replay")
            if not isinstance(replay, dict):
                fail(f"{path}: {lw}.replay must be an object")
            if sorted(replay) != sorted(CACHE_POLICY_KEYS):
                fail(f"{path}: {lw}.replay must have exactly the keys "
                     f"{CACHE_POLICY_KEYS}, got {sorted(replay)}")
            for policy in CACHE_POLICY_KEYS:
                check_policy_stats(path, f"{lw}.replay.{policy}",
                                   replay[policy])
                if replay[policy]["lookups"] != live["lookups"]:
                    fail(f"{path}: {lw}.replay.{policy}: replayed lookups "
                         f"!= live lookups (same trace)")
            # LTI is the clairvoyant Belady oracle: on the same trace at
            # the same capacity no demand-filling policy can beat it.
            lti_rate = replay["lti"]["hit_rate"]
            for policy in ("lru", "lfu"):
                if replay[policy]["hit_rate"] > lti_rate + 1e-12:
                    fail(f"{path}: {lw}: replay.{policy} hit_rate "
                         f"{replay[policy]['hit_rate']} exceeds the LTI "
                         f"oracle's {lti_rate}")


def check_lifecycle(path: str, doc: dict) -> None:
    """Validates the schema-7 "lifecycle" section: one row per workload
    (see serve/report.hpp LifecycleSummary::to_json) carrying deadline /
    cancellation outcome counts, budget-consumption quantiles and the
    circuit-breaker transition log. Everything here is expressed in
    serving-layer virtual time, so it is deterministic at any --threads
    value and --compare includes it. The transition log is replayed per
    site against the closed/open/half-open state machine: every edge
    must be legal, chains start closed, and virtual time never runs
    backwards within a site."""
    lifecycle = doc.get("lifecycle")
    if not isinstance(lifecycle, dict):
        fail(f"{path}: 'lifecycle' must be an object (schema 7)")
    rows = lifecycle.get("rows")
    if not isinstance(rows, list):
        fail(f"{path}: lifecycle.rows must be an array")

    # Lifecycle rows are a second projection of the same Server::Stats
    # the serving rows summarise, keyed by workload mix; where a mix
    # appears in both sections the shared counters must agree.
    serving_rows = {}
    for row in (doc.get("serving") or {}).get("rows", []):
        if isinstance(row, dict) and isinstance(row.get("mix"), str):
            serving_rows.setdefault(row["mix"], row)

    for i, row in enumerate(rows):
        where = f"lifecycle.rows[{i}]"
        if not isinstance(row, dict):
            fail(f"{path}: {where} must be an object")
        mix = row.get("mix")
        if not isinstance(mix, str) or not mix:
            fail(f"{path}: {where}.mix must be a non-empty string")
        units = row.get("deadline_units")
        if not isinstance(units, (int, float)) or units < 0:
            fail(f"{path}: {where}.deadline_units must be a non-negative "
                 f"number (0 = deadlines disarmed)")
        for key in LIFECYCLE_COUNT_KEYS:
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: {where}.{key} must be an int")
            if value < 0:
                fail(f"{path}: {where}.{key} is negative")
        if row["deadline_exceeded"] + row["cancelled"] > row["requests"]:
            fail(f"{path}: {where}: deadline_exceeded + cancelled exceed "
                 f"requests")
        serving_row = serving_rows.get(mix)
        if serving_row is not None:
            for key in ("requests", "deadline_exceeded", "cancelled"):
                if serving_row.get(key) != row[key]:
                    fail(f"{path}: {where}.{key} ({row[key]}) disagrees "
                         f"with the serving row for mix {mix!r} "
                         f"({serving_row.get(key)})")

        quantiles = row.get("budget_consumed")
        if not isinstance(quantiles, dict):
            fail(f"{path}: {where}.budget_consumed must be an object")
        for key in ("p50", "p90", "p99", "p999", "mean", "max"):
            value = quantiles.get(key)
            if not isinstance(value, (int, float)):
                fail(f"{path}: {where}.budget_consumed.{key} must be a "
                     f"number")
            if value < 0:
                fail(f"{path}: {where}.budget_consumed.{key} is negative")
        if not (quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]
                <= quantiles["p999"] <= quantiles["max"]):
            fail(f"{path}: {where}.budget_consumed quantiles are not "
                 f"monotonic")

        breaker = row.get("breaker")
        if not isinstance(breaker, dict):
            fail(f"{path}: {where}.breaker must be an object")
        for key in ("opened", "half_opened", "closed"):
            value = breaker.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: {where}.breaker.{key} must be an int")
            if value < 0:
                fail(f"{path}: {where}.breaker.{key} is negative")
        transitions = breaker.get("transitions")
        if not isinstance(transitions, list):
            fail(f"{path}: {where}.breaker.transitions must be an array")
        tallies = {state: 0 for state in BREAKER_STATES}
        chains = {}  # site -> (current state, last vt)
        for j, edge in enumerate(transitions):
            tw = f"{where}.breaker.transitions[{j}]"
            if not isinstance(edge, dict):
                fail(f"{path}: {tw} must be an object")
            site = edge.get("site")
            if not isinstance(site, str) or not site:
                fail(f"{path}: {tw}.site must be a non-empty string")
            for key in ("from", "to"):
                if edge.get(key) not in BREAKER_STATES:
                    fail(f"{path}: {tw}.{key} must be one of "
                         f"{BREAKER_STATES}, got {edge.get(key)!r}")
            if (edge["from"], edge["to"]) not in BREAKER_EDGES:
                fail(f"{path}: {tw}: illegal transition "
                     f"{edge['from']} -> {edge['to']}")
            vt = edge.get("vt")
            if not isinstance(vt, (int, float)) or vt < 0:
                fail(f"{path}: {tw}.vt must be a non-negative number")
            request = edge.get("request")
            if not isinstance(request, int) or request < 0:
                fail(f"{path}: {tw}.request must be a non-negative int "
                     f"(0 = cooldown thaw, no witnessing request)")
            state, last_vt = chains.get(site, ("closed", 0.0))
            if edge["from"] != state:
                fail(f"{path}: {tw}: transition departs {edge['from']!r} "
                     f"but site {site!r} is in state {state!r}")
            if vt < last_vt:
                fail(f"{path}: {tw}: virtual time runs backwards for "
                     f"site {site!r} ({vt} < {last_vt})")
            chains[site] = (edge["to"], vt)
            tallies[edge["to"]] += 1
        for key, state in (("opened", "open"), ("half_opened", "half-open"),
                           ("closed", "closed")):
            if breaker[key] != tallies[state]:
                fail(f"{path}: {where}.breaker.{key} ({breaker[key]}) does "
                     f"not match the transition log ({tallies[state]})")


def strip_nondeterministic(doc: dict) -> dict:
    """Drops the fields allowed to differ between runs of one experiment:
    wall-clock timing, and the thread count used to produce the report."""
    out = {k: v for k, v in doc.items() if k != "timing"}
    out["config"] = {k: v for k, v in doc.get("config", {}).items()
                     if k != "threads"}
    # trials is deterministic; keep it in the comparison.
    out["trials"] = doc.get("timing", {}).get("trials")
    return out


def diff_paths(a, b, prefix=""):
    """Yields dotted paths where two JSON values differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            yield from diff_paths(a.get(key), b.get(key), f"{prefix}.{key}")
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            yield f"{prefix} (length {len(a)} vs {len(b)})"
            return
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff_paths(x, y, f"{prefix}[{i}]")
    elif a != b:
        yield f"{prefix} ({a!r} vs {b!r})"


def main(argv: list) -> int:
    if not argv:
        fail("no files given (see --help in the module docstring)")
    if argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0

    if argv[0] == "--compare":
        if len(argv) != 3:
            fail("--compare takes exactly two files")
        a_path, b_path = argv[1], argv[2]
        a, b = load(a_path), load(b_path)
        check_schema(a_path, a)
        check_schema(b_path, b)
        mismatches = list(diff_paths(strip_nondeterministic(a),
                                     strip_nondeterministic(b)))
        if mismatches:
            for m in mismatches[:20]:
                print(f"  mismatch at {m}", file=sys.stderr)
            fail(f"{a_path} and {b_path} differ outside 'timing' "
                 f"({len(mismatches)} paths)")
        print(f"OK: {a_path} == {b_path} (modulo timing)")
        return 0

    for path in argv:
        doc = load(path)
        check_schema(path, doc)
        print(f"OK: {path} (bench={doc['bench']}, "
              f"trials={doc['timing']['trials']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
