#!/usr/bin/env bash
# CI entry point: strict build, full test suite, clang-tidy (when
# installed), then two sanitizer builds — ASan+UBSan over the language
# front-end tests (the part that chews model-corrupted input all day and
# so is the most UB-prone), and TSan over the thread-pool / parallel
# evaluation tests (the part that actually runs concurrent code).
#
# Usage: scripts/check.sh [--quick] [--skip-sanitizers]
#   --quick            skip both sanitizer stages (developer inner loop)
#   --skip-sanitizers  legacy alias for --quick

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
for arg in "$@"; do
  case "$arg" in
    --quick|--skip-sanitizers) SKIP_SAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> [1/5] strict build (warnings as errors)"
cmake -B build-check -S . -DQCGEN_WARNINGS_AS_ERRORS=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build-check -j "$JOBS"

echo "==> [2/5] full test suite"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "==> [3/5] clang-tidy (.clang-tidy profile)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Project sources only; third-party and generated code stay out via
  # the explicit file list (compile_commands.json covers everything).
  mapfile -t TIDY_SOURCES < <(find src bench -name '*.cpp' | sort)
  clang-tidy -p build-check --quiet "${TIDY_SOURCES[@]}"
else
  echo "    clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "==> [4/5] and [5/5] sanitizers skipped (--quick)"
  exit 0
fi

echo "==> [4/5] ASan+UBSan build, qasm/lint/fuzz tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE="address;undefined" \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_qasm_lexer|test_qasm_parser|test_qasm_analyzer|test_qasm_lint|test_qasm_roundtrip|test_fuzz_robustness|test_openqasm'

echo "==> [5/5] TSan build, thread-pool / trace / parallel-eval tests"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE=thread \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'test_thread_pool|test_trace|test_parallel_eval'

echo "==> all checks passed"
