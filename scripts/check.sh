#!/usr/bin/env bash
# CI entry point: strict build, full test suite, chaos determinism,
# translation-validation soundness (verify suites + bench_equivalence
# thread-determinism), static resource analysis (resources suites +
# bench_qec_resources thread-determinism), clang-tidy (when installed), then the heavy stages — a fail-points-off
# build (the fault-injection macros must compile away cleanly) and two
# sanitizer builds: ASan+UBSan over the language front-end tests (the
# part that chews model-corrupted input all day and so is the most
# UB-prone) plus the fail-point/harness suites, and TSan over the
# thread-pool / parallel evaluation / resilience tests (the part that
# actually runs concurrent code, now including concurrent injectors).
#
# Usage: scripts/check.sh [--quick] [--skip-sanitizers]
#   --quick            skip the heavy stages (developer inner loop)
#   --skip-sanitizers  legacy alias for --quick

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
for arg in "$@"; do
  case "$arg" in
    --quick|--skip-sanitizers) SKIP_SAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> [1/9] strict build (warnings as errors)"
cmake -B build-check -S . -DQCGEN_WARNINGS_AS_ERRORS=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build-check -j "$JOBS"

echo "==> [2/9] full test suite"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "==> [3/9] chaos determinism (bench_chaos --quick, threads 1 vs 8)"
# The fault-injection sweep must be bit-identical at any thread count
# for a fixed (seed, samples, scenario) — including the schema-3
# trial_failures/degradations sections, which --compare keeps.
./build-check/bench/bench_chaos --quick --seed 7 --threads 1 \
  --json build-check/BENCH_chaos_t1.json >/dev/null
./build-check/bench/bench_chaos --quick --seed 7 --threads 8 \
  --json build-check/BENCH_chaos_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_chaos_t1.json build-check/BENCH_chaos_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_chaos_t1.json build-check/BENCH_chaos_t8.json

echo "==> [4/9] translation validation (verify suites + bench_equivalence)"
# Every equivalence verdict is cross-checked against exact simulation;
# bench_equivalence exits non-zero on any false proved-equal /
# proved-different or a fix-it prove rate below 0.95, and its JSON
# artifact must be identical at any thread count (modulo timing).
ctest --test-dir build-check --output-on-failure -L verify
./build-check/bench/bench_equivalence --samples 1 --threads 1 \
  --json build-check/BENCH_equivalence_t1.json >/dev/null
./build-check/bench/bench_equivalence --samples 1 --threads 8 \
  --json build-check/BENCH_equivalence_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_equivalence_t1.json \
  build-check/BENCH_equivalence_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_equivalence_t1.json \
  build-check/BENCH_equivalence_t8.json

echo "==> [5/9] static resource analysis (resources suites + bench_qec_resources)"
# The cost-lattice engine and its QEC ResourcePlan consumer: exact
# enumeration cross-checks, the certified qubit-reuse fix-it gate, and
# the schema-4 resource sweep, bit-identical at any thread count.
ctest --test-dir build-check --output-on-failure -L resources
./build-check/bench/bench_qec_resources --samples 1 --threads 1 \
  --json build-check/BENCH_qec_resources_t1.json >/dev/null
./build-check/bench/bench_qec_resources --samples 1 --threads 8 \
  --json build-check/BENCH_qec_resources_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_qec_resources_t1.json \
  build-check/BENCH_qec_resources_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_qec_resources_t1.json \
  build-check/BENCH_qec_resources_t8.json

echo "==> [6/9] clang-tidy (.clang-tidy profile)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Project sources only; third-party and generated code stay out via
  # the explicit file list (compile_commands.json covers everything).
  mapfile -t TIDY_SOURCES < <(find src bench -name '*.cpp' | sort)
  clang-tidy -p build-check --quiet "${TIDY_SOURCES[@]}"
else
  echo "    clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "==> [7/9] through [9/9] heavy stages skipped (--quick)"
  exit 0
fi

echo "==> [7/9] fail-points-off build (-DQCGEN_FAILPOINTS=OFF)"
# check()/trip() compile to inline no-op stubs; the dormant paths and
# their tests must build and pass without the injection machinery.
cmake -B build-nofp -S . -DQCGEN_FAILPOINTS=OFF \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-nofp -j "$JOBS"
ctest --test-dir build-nofp --output-on-failure -j "$JOBS" \
  -R 'test_failpoint|test_resilience|test_parallel_eval'

echo "==> [8/9] ASan+UBSan build, qasm/lint/fuzz/chaos tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE="address;undefined" \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_qasm_lexer|test_qasm_parser|test_qasm_analyzer|test_qasm_lint|test_qasm_roundtrip|test_resource_analysis|test_qec_resources|test_verify|test_verify_fuzz|test_fuzz_robustness|test_openqasm|test_failpoint|test_bench_harness'

echo "==> [9/9] TSan build, thread-pool / trace / parallel-eval / chaos tests"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE=thread \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'test_thread_pool|test_trace|test_parallel_eval|test_failpoint|test_resilience'

echo "==> all checks passed"
