#!/usr/bin/env bash
# CI entry point: strict build, full test suite, then a sanitizer build
# of the language front-end tests (the part that chews model-corrupted
# input all day and so is the most UB-prone).
#
# Usage: scripts/check.sh [--skip-sanitizers]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> [1/3] strict build (warnings as errors)"
cmake -B build-check -S . -DQCGEN_WARNINGS_AS_ERRORS=ON >/dev/null
cmake --build build-check -j "$JOBS"

echo "==> [2/3] full test suite"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "==> [3/3] sanitizers skipped (--skip-sanitizers)"
  exit 0
fi

echo "==> [3/3] ASan+UBSan build, qasm/lint/fuzz tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE="address;undefined" \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_qasm_lexer|test_qasm_parser|test_qasm_analyzer|test_qasm_lint|test_qasm_roundtrip|test_fuzz_robustness|test_openqasm'

echo "==> all checks passed"
