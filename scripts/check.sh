#!/usr/bin/env bash
# CI entry point: strict build, full test suite, clang-tidy (when
# installed), then a sanitizer build of the language front-end tests
# (the part that chews model-corrupted input all day and so is the most
# UB-prone).
#
# Usage: scripts/check.sh [--skip-sanitizers]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> [1/4] strict build (warnings as errors)"
cmake -B build-check -S . -DQCGEN_WARNINGS_AS_ERRORS=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build-check -j "$JOBS"

echo "==> [2/4] full test suite"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "==> [3/4] clang-tidy (.clang-tidy profile)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Project sources only; third-party and generated code stay out via
  # the explicit file list (compile_commands.json covers everything).
  mapfile -t TIDY_SOURCES < <(find src bench -name '*.cpp' | sort)
  clang-tidy -p build-check --quiet "${TIDY_SOURCES[@]}"
else
  echo "    clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "==> [4/4] sanitizers skipped (--skip-sanitizers)"
  exit 0
fi

echo "==> [4/4] ASan+UBSan build, qasm/lint/fuzz tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE="address;undefined" \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_qasm_lexer|test_qasm_parser|test_qasm_analyzer|test_qasm_lint|test_qasm_roundtrip|test_fuzz_robustness|test_openqasm'

echo "==> all checks passed"
