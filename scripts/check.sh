#!/usr/bin/env bash
# CI entry point: strict build, full test suite, chaos determinism,
# translation-validation soundness (verify suites + bench_equivalence
# thread-determinism), static resource analysis (resources suites +
# bench_qec_resources thread-determinism), serving determinism (serve
# suites + bench_serving thread-determinism), request-lifecycle
# determinism (lifecycle suites + a chaos-armed bench_serving run whose
# schema-7 deadline/cancellation/breaker sections must be bit-identical
# across thread counts), clang-tidy, then the heavy stages — a
# fail-points-off build (the fault-injection macros must compile away
# cleanly) and two sanitizer builds: ASan+UBSan over the language
# front-end tests (the part that chews model-corrupted input all day
# and so is the most UB-prone) plus the fail-point/harness/serve/
# lifecycle suites, and TSan over the thread-pool / parallel evaluation
# / resilience / serving tests (the part that actually runs concurrent
# code, now including the async request engine and its breakers).
#
# Tool preflight: the stages assume ccache (build caching) and
# clang-tidy (stage 8). A missing tool fails fast with an install hint
# instead of silently degrading CI coverage; pass --allow-missing-tools
# to downgrade that to a recorded skip (developer machines). Every
# skipped stage is listed in a summary at the end.
#
# Usage: scripts/check.sh [--quick] [--allow-missing-tools]
#   --quick               skip the heavy stages (developer inner loop)
#   --skip-sanitizers     legacy alias for --quick
#   --allow-missing-tools record-and-skip stages whose tool is absent
#                         instead of failing the preflight

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
ALLOW_MISSING=0
for arg in "$@"; do
  case "$arg" in
    --quick|--skip-sanitizers) SKIP_SAN=1 ;;
    --allow-missing-tools) ALLOW_MISSING=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Stages skipped in this run, with reasons; printed as a summary at the
# end so a green run with silent gaps cannot masquerade as full coverage.
SKIPPED=()
skip_stage() {
  SKIPPED+=("$1: $2")
  echo "    SKIPPED: $2"
}

print_summary() {
  echo "==> stage-skip summary"
  if [[ ${#SKIPPED[@]} -eq 0 ]]; then
    echo "    none — every stage ran"
  else
    for entry in "${SKIPPED[@]}"; do
      echo "    - $entry"
    done
  fi
}

# --- tool preflight ---------------------------------------------------------
# Hard requirements first: nothing works without these.
for tool in cmake ctest python3; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "check.sh: required tool '$tool' not found on PATH" >&2
    exit 2
  fi
done
# Soft requirements: fail fast by default so CI never silently loses a
# stage; --allow-missing-tools records the skip instead.
HAVE_CCACHE=1
HAVE_TIDY=1
for tool in ccache clang-tidy; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    if [[ "$ALLOW_MISSING" == "1" ]]; then
      [[ "$tool" == ccache ]] && HAVE_CCACHE=0 || HAVE_TIDY=0
      echo "check.sh: '$tool' not found; continuing (--allow-missing-tools)"
    else
      echo "check.sh: '$tool' not found on PATH." >&2
      echo "  Install it (apt-get install $tool) or re-run with" >&2
      echo "  --allow-missing-tools to record-and-skip its stage." >&2
      exit 2
    fi
  fi
done

# ccache is a build accelerator, not a stage: wire it up when present,
# record its absence so slow CI builds are explainable from the log.
LAUNCHER_ARGS=()
if [[ "$HAVE_CCACHE" == "1" ]]; then
  LAUNCHER_ARGS+=("-DCMAKE_C_COMPILER_LAUNCHER=ccache"
                  "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
else
  SKIPPED+=("ccache: not installed; builds run uncached")
fi

echo "==> [1/11] strict build (warnings as errors)"
cmake -B build-check -S . -DQCGEN_WARNINGS_AS_ERRORS=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "${LAUNCHER_ARGS[@]}" >/dev/null
cmake --build build-check -j "$JOBS"

echo "==> [2/11] full test suite"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "==> [3/11] chaos determinism (bench_chaos --quick, threads 1 vs 8)"
# The fault-injection sweep must be bit-identical at any thread count
# for a fixed (seed, samples, scenario) — including the schema-3
# trial_failures/degradations sections, which --compare keeps.
./build-check/bench/bench_chaos --quick --seed 7 --threads 1 \
  --json build-check/BENCH_chaos_t1.json >/dev/null
./build-check/bench/bench_chaos --quick --seed 7 --threads 8 \
  --json build-check/BENCH_chaos_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_chaos_t1.json build-check/BENCH_chaos_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_chaos_t1.json build-check/BENCH_chaos_t8.json

echo "==> [4/11] translation validation (verify suites + bench_equivalence)"
# Every equivalence verdict is cross-checked against exact simulation;
# bench_equivalence exits non-zero on any false proved-equal /
# proved-different or a fix-it prove rate below 0.95, and its JSON
# artifact must be identical at any thread count (modulo timing).
ctest --test-dir build-check --output-on-failure -L verify
./build-check/bench/bench_equivalence --samples 1 --threads 1 \
  --json build-check/BENCH_equivalence_t1.json >/dev/null
./build-check/bench/bench_equivalence --samples 1 --threads 8 \
  --json build-check/BENCH_equivalence_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_equivalence_t1.json \
  build-check/BENCH_equivalence_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_equivalence_t1.json \
  build-check/BENCH_equivalence_t8.json

echo "==> [5/11] static resource analysis (resources suites + bench_qec_resources)"
# The cost-lattice engine and its QEC ResourcePlan consumer: exact
# enumeration cross-checks, the certified qubit-reuse fix-it gate, and
# the schema-4 resource sweep, bit-identical at any thread count.
ctest --test-dir build-check --output-on-failure -L resources
./build-check/bench/bench_qec_resources --samples 1 --threads 1 \
  --json build-check/BENCH_qec_resources_t1.json >/dev/null
./build-check/bench/bench_qec_resources --samples 1 --threads 8 \
  --json build-check/BENCH_qec_resources_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_qec_resources_t1.json \
  build-check/BENCH_qec_resources_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_qec_resources_t1.json \
  build-check/BENCH_qec_resources_t8.json

echo "==> [6/11] serving + cache determinism (serve/cache suites + bench_serving)"
# The async request engine and the content-addressed caching layer:
# admission decisions, shed/degradation events, virtual-time latency
# quantiles and the per-layer cache counters/policy-replay stats (the
# schema-6 "serving" + "cache" sections) must be bit-identical at any
# worker thread count; wall-clock latency and cache speedup live under
# "timing", which --compare strips.
ctest --test-dir build-check --output-on-failure -L serve
ctest --test-dir build-check --output-on-failure -L cache
./build-check/bench/bench_serving --quick --seed 7 --threads 1 \
  --json build-check/BENCH_serving_t1.json >/dev/null
./build-check/bench/bench_serving --quick --seed 7 --threads 8 \
  --json build-check/BENCH_serving_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_serving_t1.json build-check/BENCH_serving_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_serving_t1.json build-check/BENCH_serving_t8.json

echo "==> [7/11] request lifecycle (lifecycle suites + chaos-armed bench_serving)"
# Deadline propagation, cooperative cancellation and per-site circuit
# breakers: the lifecycle suites replay the breaker state machine at
# several thread counts, and a bench_serving run with sustained faults
# armed bench-wide must (a) satisfy the schema-7 validator — outcome
# conservation, legal breaker transition chains — and (b) stay
# bit-identical between 1 and 8 workers. --scenario also skips the
# cache study, covering the validator's cache-optional branch.
ctest --test-dir build-check --output-on-failure -L lifecycle
./build-check/bench/bench_serving --quick --seed 7 --threads 1 \
  --scenario "qec.decode=error(1.0);retrieval.query=error(0.7)" \
  --json build-check/BENCH_lifecycle_t1.json >/dev/null
./build-check/bench/bench_serving --quick --seed 7 --threads 8 \
  --scenario "qec.decode=error(1.0);retrieval.query=error(0.7)" \
  --json build-check/BENCH_lifecycle_t8.json >/dev/null
scripts/validate_bench_json.py \
  build-check/BENCH_lifecycle_t1.json build-check/BENCH_lifecycle_t8.json
scripts/validate_bench_json.py --compare \
  build-check/BENCH_lifecycle_t1.json build-check/BENCH_lifecycle_t8.json

echo "==> [8/11] clang-tidy (.clang-tidy profile)"
if [[ "$HAVE_TIDY" == "1" ]]; then
  # Project sources only; third-party and generated code stay out via
  # the explicit file list (compile_commands.json covers everything).
  mapfile -t TIDY_SOURCES < <(find src bench -name '*.cpp' | sort)
  clang-tidy -p build-check --quiet "${TIDY_SOURCES[@]}"
else
  skip_stage "[8/11] clang-tidy" "clang-tidy not installed (profile: .clang-tidy)"
fi

if [[ "$SKIP_SAN" == "1" ]]; then
  skip_stage "[9/11] fail-points-off build" "--quick"
  skip_stage "[10/11] ASan+UBSan" "--quick"
  skip_stage "[11/11] TSan" "--quick"
  print_summary
  echo "==> all checks passed (quick)"
  exit 0
fi

echo "==> [9/11] fail-points-off build (-DQCGEN_FAILPOINTS=OFF)"
# check()/trip() compile to inline no-op stubs; the dormant paths and
# their tests must build and pass without the injection machinery.
cmake -B build-nofp -S . -DQCGEN_FAILPOINTS=OFF \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF \
  "${LAUNCHER_ARGS[@]}" >/dev/null
cmake --build build-nofp -j "$JOBS"
ctest --test-dir build-nofp --output-on-failure -j "$JOBS" \
  -R 'test_failpoint|test_resilience|test_parallel_eval|test_serve|test_lifecycle'

echo "==> [10/11] ASan+UBSan build, qasm/lint/fuzz/chaos/serve/lifecycle tests"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE="address;undefined" \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF \
  "${LAUNCHER_ARGS[@]}" >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'test_qasm_lexer|test_qasm_parser|test_qasm_analyzer|test_qasm_lint|test_qasm_roundtrip|test_resource_analysis|test_qec_resources|test_verify|test_verify_fuzz|test_fuzz_robustness|test_openqasm|test_failpoint|test_bench_harness|test_cache|test_serve|test_lifecycle'

echo "==> [11/11] TSan build, thread-pool / trace / parallel-eval / chaos / cache / serve / lifecycle tests"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQCGEN_SANITIZE=thread \
  -DQCGEN_BUILD_BENCH=OFF -DQCGEN_BUILD_EXAMPLES=OFF \
  "${LAUNCHER_ARGS[@]}" >/dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'test_thread_pool|test_trace|test_parallel_eval|test_failpoint|test_resilience|test_cache|test_serve|test_lifecycle'

print_summary
echo "==> all checks passed"
