// Fault-tolerant Deutsch-Jozsa: the paper's flagship QEC demonstration
// (Fig 4) exposed as a configurable example.
//
//   ./build/examples/fault_tolerant_dj [distance] [decoder]
//     distance: odd >= 3 (default 3)
//     decoder:  lookup | greedy | mwpm | union-find (default mwpm)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "agents/pipeline.hpp"
#include "agents/qec_agent.hpp"
#include "agents/topology.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/circuit.hpp"
#include "sim/noise.hpp"

using namespace qcgen;

int main(int argc, char** argv) {
  int distance = 3;
  qec::DecoderKind decoder = qec::DecoderKind::kMwpm;
  if (argc > 1) distance = std::atoi(argv[1]);
  if (argc > 2) {
    const char* name = argv[2];
    if (!std::strcmp(name, "lookup")) decoder = qec::DecoderKind::kLookup;
    else if (!std::strcmp(name, "greedy")) decoder = qec::DecoderKind::kGreedy;
    else if (!std::strcmp(name, "mwpm")) decoder = qec::DecoderKind::kMwpm;
    else if (!std::strcmp(name, "union-find")) decoder = qec::DecoderKind::kUnionFind;
    else {
      std::printf("unknown decoder '%s'\n", name);
      return 1;
    }
  }
  if (distance < 3 || distance % 2 == 0) {
    std::printf("distance must be odd and >= 3\n");
    return 1;
  }

  const agents::DeviceTopology device = agents::DeviceTopology::ibm_brisbane();
  std::printf("Device: %s (%zu qubits, max code distance %d)\n",
              device.name().c_str(), device.num_qubits(),
              device.max_surface_code_distance());

  agents::QecDecoderAgent::Options qec_options;
  qec_options.target_distance = distance;
  qec_options.decoder = decoder;
  const agents::QecDecoderAgent agent(qec_options);
  const agents::QecPlan plan = agent.plan_for(device);
  if (!plan.feasible) {
    std::printf("QEC plan infeasible: %s\n", plan.reason.c_str());
    return 1;
  }

  Table table({"quantity", "value"});
  table.set_title("QEC plan");
  table.add_row({"code distance", std::to_string(plan.distance)});
  table.add_row({"decoder", std::string(qec::decoder_kind_name(plan.decoder))});
  table.add_row({"physical error / round",
                 format_double(plan.lifetime.physical_error_per_round, 4)});
  table.add_row({"logical error / round",
                 format_double(plan.lifetime.logical_error_per_round, 5)});
  table.add_row({"qubit lifetime extension",
                 format_double(plan.lifetime.lifetime_extension, 1) + "x"});
  std::printf("%s\n", table.to_string().c_str());

  // The protected workload: constant-oracle DJ over 3 inputs.
  const sim::Circuit circuit = sim::circuits::deutsch_jozsa(3, true);
  const std::uint64_t shots = 4096;
  const Counts noisy =
      sim::run_noisy(circuit, device.noise(), sim::NoisyRunOptions{shots, 5});
  const Counts protected_counts = sim::run_noisy(
      circuit, plan.effective_noise, sim::NoisyRunOptions{shots, 6});

  Table results({"run", "P(|000>)", "residual error"});
  results.set_title("Deutsch-Jozsa (constant oracle) outcome quality");
  const double p_noisy = outcome_probability(noisy, "000");
  const double p_protected = outcome_probability(protected_counts, "000");
  results.add_row({"noisy device", format_double(p_noisy, 4),
                   format_double(100 * (1 - p_noisy), 2) + "%"});
  results.add_row({"with QEC corrections", format_double(p_protected, 4),
                   format_double(100 * (1 - p_protected), 2) + "%"});
  std::printf("%s\n", results.to_string().c_str());
  std::printf("Error reduced by a factor of %.2f (decoder suppression "
              "factor %.3f).\n",
              (1 - p_noisy) / std::max(1e-9, 1 - p_protected),
              plan.lifetime.suppression_factor);
  return 0;
}
