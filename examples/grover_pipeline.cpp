// Grover search, end to end: the workload the paper's intermediate tier
// stresses. Compares technique configurations on the same task, prints
// the winning program, and runs it under device noise.
//
//   ./build/examples/grover_pipeline [marked-state]

#include <cstdio>
#include <cstdlib>

#include "agents/pipeline.hpp"
#include "agents/topology.hpp"
#include "common/table.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "sim/noise.hpp"

using namespace qcgen;

int main(int argc, char** argv) {
  const int marked = argc > 1 ? std::atoi(argv[1]) : 5;
  if (marked < 0 || marked > 7) {
    std::printf("marked state must be in 0..7\n");
    return 1;
  }

  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kGrover;
  task.params = {{"n", 3}, {"marked", double(marked)}, {"iterations", 2}};
  std::printf("Prompt: %s\n\n", llm::prompt_text(task).c_str());

  const sim::Distribution reference =
      sim::exact_distribution(qasm::build_circuit(llm::gold_program(task)));

  // How often does each technique produce a valid Grover implementation?
  using agents::TechniqueConfig;
  const auto profile = llm::ModelProfile::kStarCoder3B;
  struct Candidate {
    const char* name;
    TechniqueConfig config;
  };
  const Candidate candidates[] = {
      {"fine-tuned", TechniqueConfig::fine_tuned_only(profile)},
      {"fine-tuned + CoT", TechniqueConfig::with_cot(profile)},
      {"fine-tuned + SCoT", TechniqueConfig::with_scot(profile)},
  };

  Table table({"technique", "valid / 20 samples"});
  table.set_title("Grover generation success by technique");
  std::string best_source;
  std::optional<sim::Circuit> best_circuit;
  for (const Candidate& candidate : candidates) {
    agents::MultiAgentPipeline pipeline(
        candidate.config, agents::SemanticAnalyzerAgent::Options(),
        std::nullopt, std::nullopt, 11);
    int valid = 0;
    for (int i = 0; i < 20; ++i) {
      const auto result = pipeline.run(task, reference, 0);
      if (result.semantic_ok) {
        ++valid;
        best_source = result.generation.source;
        best_circuit = result.circuit;
      }
    }
    table.add_row({candidate.name, std::to_string(valid)});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!best_circuit.has_value()) {
    std::printf("no valid program generated; try another seed\n");
    return 1;
  }
  std::printf("--- accepted program ----------------------------------\n%s"
              "--------------------------------------------------------\n\n",
              best_source.c_str());

  // Ideal vs noisy execution.
  const Counts ideal = sim::run_ideal(*best_circuit, sim::RunOptions{2048, 3});
  const Counts noisy = sim::run_noisy(
      *best_circuit, sim::NoiseModel::ibm_brisbane(),
      sim::NoisyRunOptions{2048, 3});
  std::string target(3, '0');
  for (int b = 0; b < 3; ++b) {
    if ((marked >> b) & 1) target[2 - b] = '1';
  }
  std::printf("P(|%s>): ideal %.3f, under IBM-Brisbane-like noise %.3f\n",
              target.c_str(), outcome_probability(ideal, target),
              outcome_probability(noisy, target));
  return 0;
}
