// QEC playground: direct use of the surface-code library without the
// agents — build a code, inject hand-picked errors, watch syndromes,
// decode, and sweep the logical error rate.
//
//   ./build/examples/qec_playground [distance]

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "qec/logical_error.hpp"
#include "qec/steane.hpp"

using namespace qcgen;
using namespace qcgen::qec;

int main(int argc, char** argv) {
  const int distance = argc > 1 ? std::atoi(argv[1]) : 5;
  if (distance < 3 || distance % 2 == 0) {
    std::printf("distance must be odd and >= 3\n");
    return 1;
  }
  const SurfaceCode code = SurfaceCode::rotated(distance);
  std::printf("Rotated surface code, distance %d: %zu data qubits, "
              "%zu stabilizers\n\n%s\n",
              distance, code.num_data_qubits(), code.stabilizers().size(),
              code.to_ascii().c_str());

  // Inject a two-qubit X error chain and decode it.
  PauliFrame frame(code.num_data_qubits());
  frame.x[code.data_index(1, 1)] = 1;
  frame.x[code.data_index(1, 2)] = 1;
  const Syndrome syndrome = measure_syndrome(code, frame);
  std::printf("Injected X errors at (1,1) and (1,2); violated Z "
              "stabilizers:");
  const auto& z_idx = code.stabilizer_indices(PauliType::kZ);
  for (std::size_t pos = 0; pos < z_idx.size(); ++pos) {
    if (syndrome.z[pos]) {
      const Stabilizer& s = code.stabilizers()[z_idx[pos]];
      std::printf(" cell(%d,%d)", s.cell_row, s.cell_col);
    }
  }
  std::printf("\n");

  auto decoder = make_decoder(DecoderKind::kMwpm, code, PauliType::kZ);
  SyndromeHistory history(code.num_data_qubits());
  history.frame = frame;
  history.rounds = {syndrome};
  const auto fix = decoder->decode(detection_events(history, PauliType::kZ));
  std::printf("Decoder suggests X corrections on qubits:");
  for (std::size_t q : fix) {
    std::printf(" (%d,%d)", code.data_row(q), code.data_col(q));
  }
  PauliFrame residual = frame;
  residual.apply(correction_frame(code, PauliType::kZ, fix));
  std::printf("\nLogical state %s.\n\n",
              logical_flip(code, residual, PauliType::kX) ? "LOST"
                                                          : "preserved");

  // Logical error rate sweep: the code's threshold behaviour.
  Table sweep({"physical p", "logical error rate", "95% CI"});
  sweep.set_title("Logical error rate (" + std::to_string(distance) +
                  "-distance, mwpm, d rounds, 1500 trials)");
  for (double p : {0.002, 0.005, 0.01, 0.02, 0.04, 0.08}) {
    LogicalErrorConfig config;
    config.noise = {p, p};
    config.trials = 1500;
    const auto estimate = estimate_logical_error(code, DecoderKind::kMwpm,
                                                 config);
    sweep.add_row({format_double(p, 3),
                   format_double(estimate.logical_error_rate, 4),
                   "[" + format_double(estimate.confidence.lo, 4) + ", " +
                       format_double(estimate.confidence.hi, 4) + "]"});
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // Bonus: the Steane code from the paper's background section.
  const SteaneCode steane;
  std::printf("Steane [[7,1,3]] logical error rate at p=0.01: %.5f "
              "(raw physical: 0.01)\n",
              steane.logical_error_rate(0.01, 20000, 3));
  return 0;
}
