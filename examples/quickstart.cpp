// Quickstart: drive the multi-agent pipeline on a single prompt.
//
// Shows the core public API:
//   1. pick a task (a natural-language prompt with ground-truth spec),
//   2. configure a technique (fine-tuned model + structured CoT here),
//   3. run the pipeline: generation -> semantic analysis -> repair,
//   4. inspect the generated QasmLite program and its behaviour.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "agents/pipeline.hpp"
#include "common/table.hpp"
#include "llm/templates.hpp"
#include "sim/draw.hpp"
#include "qasm/builder.hpp"
#include "sim/statevector.hpp"

using namespace qcgen;

int main() {
  // 1. The task: prepare a 3-qubit GHZ state.
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kGhz;
  task.params = {{"n", 3}};
  std::printf("Prompt: %s\n\n", llm::prompt_text(task).c_str());

  // 2. Technique: fine-tuned StarCoder-3B stand-in with SCoT prompting
  //    and up to 3 inference passes.
  agents::TechniqueConfig technique =
      agents::TechniqueConfig::with_scot(llm::ModelProfile::kStarCoder3B);
  technique.max_passes = 3;

  // 3. The reference behaviour the semantic analyzer checks against
  //    (in the evaluation harness this comes from the gold solution).
  const sim::Distribution reference =
      sim::exact_distribution(qasm::build_circuit(llm::gold_program(task)));

  agents::MultiAgentPipeline pipeline(technique,
                                      agents::SemanticAnalyzerAgent::Options(),
                                      std::nullopt, std::nullopt, /*seed=*/1);

  // 4. Run until we obtain a valid program (the model is stochastic).
  agents::PipelineResult result;
  int attempts = 0;
  do {
    result = pipeline.run(task, reference, /*prompt_index=*/0);
    ++attempts;
  } while (!result.semantic_ok && attempts < 16);

  std::printf("Result after %d attempt(s), %d pass(es): %s\n\n", attempts,
              result.passes_used,
              result.semantic_ok ? "syntactically and semantically VALID"
                                 : "still failing");
  std::printf("--- generated program ---------------------------------\n%s"
              "--------------------------------------------------------\n\n",
              result.generation.source.c_str());

  if (result.circuit.has_value()) {
    std::printf("Circuit diagram:\n%s\n", sim::draw(*result.circuit).c_str());
    const Counts counts =
        sim::run_ideal(*result.circuit, sim::RunOptions{1024, 7});
    std::printf("Sampled counts (1024 shots):\n");
    std::vector<std::pair<std::string, double>> bars;
    for (const auto& [key, count] : counts) {
      bars.emplace_back(key, static_cast<double>(count));
    }
    std::printf("%s\n", bar_chart(bars, 0.0, 40, " shots").c_str());
  }

  // The per-pass trace shows the repair loop at work.
  std::printf("Pass trace:\n");
  for (const auto& pass : result.trace) {
    std::printf("  pass %d: syntactic=%s semantic=%s errors=%zu\n", pass.pass,
                pass.syntactic_ok ? "ok" : "FAIL",
                pass.semantic_ok ? "ok" : "FAIL", pass.error_count);
  }
  return result.semantic_ok ? 0 : 1;
}
