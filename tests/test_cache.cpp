// Tests for the content-addressed cache subsystem: key hashing,
// replacement policies (LRU / LFU / the Belady LTI oracle), the sharded
// single-flight Cache, offline trace replay, and the three memoization
// layers wired onto it (generation, retrieval, analysis) — including the
// hit-equals-miss byte-identity contract and version-bump invalidation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "agents/codegen_agent.hpp"
#include "agents/semantic_agent.hpp"
#include "agents/technique_resources.hpp"
#include "common/cache/cache.hpp"
#include "common/cache/hash.hpp"
#include "common/cache/policy.hpp"
#include "common/cache/replay.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "eval/suite.hpp"
#include "llm/corpus.hpp"
#include "llm/vectorstore.hpp"

using namespace qcgen;

namespace {

/// Every PolicyStats must obey the conservation laws regardless of the
/// access pattern or thread schedule that produced it.
void expect_conserved(const cache::PolicyStats& stats) {
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(stats.inserts, stats.misses);
  EXPECT_LE(stats.evictions, stats.inserts);
  EXPECT_GE(stats.hit_rate(), 0.0);
  EXPECT_LE(stats.hit_rate(), 1.0);
}

}  // namespace

// ---------------------------------------------------------------------------
// KeyHasher

TEST(KeyHasher, DeterministicAndOrderSensitive) {
  const auto digest = [](auto&&... fields) {
    cache::KeyHasher hasher;
    (hasher.mix(fields), ...);
    return hasher.digest();
  };
  EXPECT_EQ(digest(std::uint64_t{1}, std::uint64_t{2}),
            digest(std::uint64_t{1}, std::uint64_t{2}));
  EXPECT_NE(digest(std::uint64_t{1}, std::uint64_t{2}),
            digest(std::uint64_t{2}, std::uint64_t{1}));
  EXPECT_NE(digest(std::uint64_t{1}), digest(std::uint64_t{2}));
}

TEST(KeyHasher, FieldBoundariesArePartOfTheHash) {
  using namespace std::string_view_literals;
  cache::KeyHasher a, b;
  a.mix("ab"sv).mix("c"sv);
  b.mix("a"sv).mix("bc"sv);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KeyHasher, NegativeZeroNormalises) {
  cache::KeyHasher a, b, c;
  a.mix(0.0);
  b.mix(-0.0);
  c.mix(1.0);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

// ---------------------------------------------------------------------------
// Policies

TEST(Policy, NamesRoundTrip) {
  for (const cache::PolicyKind kind :
       {cache::PolicyKind::kLru, cache::PolicyKind::kLfu,
        cache::PolicyKind::kLti}) {
    const auto parsed = cache::parse_policy_kind(cache::policy_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(cache::parse_policy_kind("belady").has_value());
}

TEST(Policy, LruEvictsLeastRecentlyUsed) {
  const auto policy = cache::make_policy(cache::PolicyKind::kLru);
  policy->on_insert(1);
  policy->on_insert(2);
  policy->on_insert(3);
  policy->on_access(1);
  EXPECT_EQ(policy->victim(), 2u);
  policy->on_erase(2);
  EXPECT_EQ(policy->victim(), 3u);
}

TEST(Policy, LfuEvictsLeastFrequentRecencyBreaksTies) {
  const auto policy = cache::make_policy(cache::PolicyKind::kLfu);
  policy->on_insert(1);
  policy->on_insert(2);
  policy->on_insert(3);
  policy->on_access(1);
  policy->on_access(1);
  policy->on_access(3);
  // 2 has the lowest frequency.
  EXPECT_EQ(policy->victim(), 2u);
  policy->on_access(2);
  policy->on_access(2);
  // Frequencies now 1:3, 2:3, 3:2.
  EXPECT_EQ(policy->victim(), 3u);
  policy->on_access(3);
  // All at 3 accesses: 1 is the least recently touched.
  EXPECT_EQ(policy->victim(), 1u);
}

TEST(Policy, LtiIsReplayOnly) {
  EXPECT_THROW(cache::make_policy(cache::PolicyKind::kLti),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// replay_trace

TEST(Replay, BeladyOracleBeatsOnlinePoliciesOnTheClassicCycle) {
  // The canonical adversarial trace for LRU at capacity 2: a 3-key
  // cycle. LRU and LFU both thrash to zero hits; Belady keeps one key
  // resident across each wrap and earns a hit per cycle.
  const std::vector<std::uint64_t> trace = {1, 2, 3, 1, 2, 3};
  const auto lru = cache::replay_trace(trace, 2, cache::PolicyKind::kLru);
  const auto lfu = cache::replay_trace(trace, 2, cache::PolicyKind::kLfu);
  const auto lti = cache::replay_trace(trace, 2, cache::PolicyKind::kLti);
  expect_conserved(lru);
  expect_conserved(lfu);
  expect_conserved(lti);
  EXPECT_EQ(lru.lookups, trace.size());
  EXPECT_EQ(lru.hits, 0u);
  EXPECT_EQ(lfu.hits, 0u);
  EXPECT_EQ(lti.hits, 2u);  // hand-simulated: hits at positions 3 and 5
  EXPECT_EQ(lti.misses, 4u);
}

TEST(Replay, DeterministicAndLtiOptimalOnPseudoRandomTraces) {
  // Zipf-ish synthetic trace: small keys dominate.
  std::vector<std::uint64_t> trace;
  std::uint64_t state = 7;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t draw = splitmix64(state);
    trace.push_back(1 + (draw % 8 == 0 ? draw % 32 : draw % 6));
  }
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                     std::size_t{8}}) {
    const auto lru = cache::replay_trace(trace, capacity,
                                         cache::PolicyKind::kLru);
    const auto lfu = cache::replay_trace(trace, capacity,
                                         cache::PolicyKind::kLfu);
    const auto lti = cache::replay_trace(trace, capacity,
                                         cache::PolicyKind::kLti);
    expect_conserved(lru);
    expect_conserved(lfu);
    expect_conserved(lti);
    // Replays are pure: same trace, same stats.
    EXPECT_EQ(lru, cache::replay_trace(trace, capacity,
                                       cache::PolicyKind::kLru));
    EXPECT_EQ(lti, cache::replay_trace(trace, capacity,
                                       cache::PolicyKind::kLti));
    // Belady optimality: no online policy beats the oracle.
    EXPECT_GE(lti.hits, lru.hits) << "capacity " << capacity;
    EXPECT_GE(lti.hits, lfu.hits) << "capacity " << capacity;
  }
}

TEST(Replay, RejectsZeroCapacity) {
  const std::vector<std::uint64_t> trace = {1, 2};
  EXPECT_THROW(cache::replay_trace(trace, 0, cache::PolicyKind::kLru),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Cache

TEST(Cache, ComputesOncePerKeyAndCountsHits) {
  cache::Cache<int> cache({.name = "t"});
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 41 + computes;
  };
  EXPECT_EQ(*cache.get_or_compute(5, compute), 42);
  EXPECT_EQ(*cache.get_or_compute(5, compute), 42);  // hit, not 43
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*cache.get_or_compute(6, compute), 43);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  expect_conserved(stats);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.peek(5), nullptr);
  EXPECT_EQ(*cache.peek(5), 42);
  EXPECT_EQ(cache.peek(99), nullptr);
  // peek is an observation aid: it never touches the counters.
  EXPECT_EQ(cache.stats().lookups, 3u);
}

TEST(Cache, FailedComputeIsNeverPublished) {
  cache::Cache<int> cache({.name = "t"});
  EXPECT_THROW(cache.get_or_compute(
                   1, []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // The retry recomputes and publishes normally.
  EXPECT_EQ(*cache.get_or_compute(1, [] { return 7; }), 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);   // the failed attempt still missed
  EXPECT_EQ(stats.inserts, 1u);  // but only the successful one inserted
  expect_conserved(stats);
}

TEST(Cache, BoundedSingleShardEvictsByPolicy) {
  cache::Cache<int> cache(
      {.name = "t", .capacity = 2, .policy = cache::PolicyKind::kLru,
       .shards = 1});
  const auto value = [](int v) { return [v] { return v; }; };
  (void)cache.get_or_compute(1, value(1));
  (void)cache.get_or_compute(2, value(2));
  (void)cache.get_or_compute(1, value(1));  // refresh 1; 2 is now LRU
  (void)cache.get_or_compute(3, value(3));  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_EQ(cache.peek(2), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  expect_conserved(stats);
  // The evicted key recomputes on the next lookup.
  EXPECT_EQ(*cache.get_or_compute(2, value(20)), 20);
}

TEST(Cache, RejectsInvalidOptions) {
  EXPECT_THROW(cache::Cache<int>({.name = "t", .shards = 0}),
               InvalidArgumentError);
  EXPECT_THROW(cache::Cache<int>({.name = "t",
                                  .policy = cache::PolicyKind::kLti}),
               InvalidArgumentError);
}

TEST(Cache, SingleFlightCoalescesConcurrentMisses) {
  cache::Cache<int> cache({.name = "t", .shards = 1});
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      const auto value = cache.get_or_compute(77, [&] {
        ++computes;
        // Widen the race window so waiters really do pile up in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 123;
      });
      if (*value != 123) ++failures;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(computes.load(), 1);  // single flight: one compute total
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.misses, 1u);  // totals are schedule-independent
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  expect_conserved(stats);
}

TEST(Cache, MultiThreadHammerOnOneShardKeepsInvariants) {
  // TSan target: many threads, one shard, bounded capacity — maximum
  // lock/cv contention. Totals are schedule-dependent here (eviction
  // interleaves with lookups), but conservation must always hold.
  cache::Cache<int> cache(
      {.name = "t", .capacity = 4, .policy = cache::PolicyKind::kLfu,
       .shards = 1});
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::uint64_t state = 1000 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = splitmix64(state) % 16;
        const auto value =
            cache.get_or_compute(key, [key] { return static_cast<int>(key); });
        if (*value != static_cast<int>(key)) std::abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kThreads * kOps));
  expect_conserved(stats);
  EXPECT_LE(cache.size(), 4u);
}

// ---------------------------------------------------------------------------
// Access-trace recording

TEST(CacheTagScope, NestsAndRestores) {
  cache::CacheTagScope outer(5);
  EXPECT_EQ(cache::CacheTagScope::next(), (std::pair<std::uint64_t,
                                           std::uint64_t>{5, 0}));
  EXPECT_EQ(cache::CacheTagScope::next(), (std::pair<std::uint64_t,
                                           std::uint64_t>{5, 1}));
  {
    cache::CacheTagScope inner(7);
    EXPECT_EQ(cache::CacheTagScope::next(), (std::pair<std::uint64_t,
                                             std::uint64_t>{7, 0}));
  }
  // The outer scope's sequence resumes where it left off.
  EXPECT_EQ(cache::CacheTagScope::next(), (std::pair<std::uint64_t,
                                           std::uint64_t>{5, 2}));
}

TEST(Cache, AccessTraceIsCanonicalAcrossThreadInterleavings) {
  // Two "requests" (tags 1 and 2) with fixed per-request access
  // sequences, executed under different interleavings: the recorded
  // trace sorts to the same canonical order either way.
  const auto run = [](bool swap) {
    cache::Cache<int> cache({.name = "t", .shards = 4, .record_trace = true});
    const auto request1 = [&] {
      cache::CacheTagScope scope(1);
      for (const std::uint64_t key : {10u, 11u, 10u}) {
        (void)cache.get_or_compute(key, [key] { return static_cast<int>(key); });
      }
    };
    const auto request2 = [&] {
      cache::CacheTagScope scope(2);
      for (const std::uint64_t key : {11u, 12u}) {
        (void)cache.get_or_compute(key, [key] { return static_cast<int>(key); });
      }
    };
    if (swap) {
      std::thread b(request2);
      request1();
      b.join();
    } else {
      std::thread a(request1);
      request2();
      a.join();
    }
    return cache.access_trace();
  };
  const auto forward = run(false);
  const auto swapped = run(true);
  const std::vector<std::uint64_t> canonical = {10, 11, 10, 11, 12};
  EXPECT_EQ(forward, canonical);
  EXPECT_EQ(swapped, canonical);
}

TEST(Cache, TraceOffByDefault) {
  cache::Cache<int> cache({.name = "t"});
  (void)cache.get_or_compute(1, [] { return 1; });
  EXPECT_TRUE(cache.access_trace().empty());
}

// ---------------------------------------------------------------------------
// Generation layer

TEST(GenerationLayer, CachedHitsAreByteIdenticalToUncached) {
  const auto technique =
      agents::TechniqueConfig::with_rag(llm::ModelProfile::kStarCoder3B);
  const auto resources =
      std::make_shared<const agents::TechniqueResources>(technique);
  const auto cache = std::make_shared<agents::GenerationCache>(
      cache::CacheOptions{.name = "generation"});

  agents::CodeGenAgent cached(technique, resources, /*seed=*/1);
  cached.set_content_addressed(cache);
  agents::CodeGenAgent bypass(technique, resources, /*seed=*/2);
  bypass.set_content_addressed(nullptr);  // content-addressed, unmemoized

  const auto task = eval::semantic_suite()[0].task;
  const auto miss = cached.generate(task, 0, true);
  const auto hit = cached.generate(task, 0, true);
  const auto pure = bypass.generate(task, 0, true);
  // Hit == miss == the uncached content-addressed compute, byte for
  // byte — the certification contract. The agents' own seeds (1 vs 2)
  // are irrelevant: content-addressed draws are seeded from the key.
  EXPECT_EQ(miss.source, hit.source);
  EXPECT_EQ(miss.source, pure.source);
  EXPECT_EQ(miss.retrieval.api_hits, pure.retrieval.api_hits);
  EXPECT_EQ(miss.retrieval.guide_matched_algorithm,
            pure.retrieval.guide_matched_algorithm);
  EXPECT_EQ(miss.faults.size(), pure.faults.size());
  const auto stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(GenerationLayer, KeySeparatesTechniqueAndKnowledgeVersions) {
  const auto base =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  auto wider = base;
  wider.rag_top_k = base.rag_top_k + 1;
  agents::CodeGenAgent a(base, /*seed=*/1);
  agents::CodeGenAgent b(wider, /*seed=*/1);
  const auto task = eval::semantic_suite()[0].task;
  // Same task, different technique digest -> disjoint key spaces.
  EXPECT_NE(a.generation_key(task, 0, false), b.generation_key(task, 0, false));

  // A knowledge-state change (base vs fine-tuned profile) bumps the
  // knowledge version, diverging every key: invalidation without any
  // explicit flush.
  const auto untuned =
      agents::TechniqueConfig::base(llm::ModelProfile::kStarCoder3B);
  agents::CodeGenAgent c(untuned, /*seed=*/1);
  EXPECT_NE(a.generation_key(task, 0, false), c.generation_key(task, 0, false));

  // Stable within one configuration; the prompt index only matters
  // through the hand-written-scaffold decision.
  EXPECT_EQ(a.generation_key(task, 0, false), a.generation_key(task, 0, false));
  const std::size_t past_window = base.cot_hand_written + 1;
  EXPECT_EQ(a.generation_key(task, past_window, false),
            a.generation_key(task, past_window + 1, false));
}

// ---------------------------------------------------------------------------
// Retrieval layer

TEST(RetrievalLayer, CachedHitsMatchUncachedRetrieval) {
  const auto chunks = llm::chunk_documents(llm::algorithm_guide_corpus(),
                                           llm::ChunkStrategy::kBasic, 48);
  llm::VectorStore uncached(chunks);
  llm::VectorStore cached(chunks);
  const auto cache = std::make_shared<llm::RetrievalCache>(
      cache::CacheOptions{.name = "retrieval"});
  cached.attach_cache(cache);
  EXPECT_EQ(uncached.content_version(), cached.content_version());

  const std::string query = "grover search oracle diffusion";
  const auto expect_same = [&] {
    const auto a = uncached.retrieve(query, 3);
    const auto b = cached.retrieve(query, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].chunk->doc_id, b[i].chunk->doc_id);
      EXPECT_EQ(a[i].chunk->text, b[i].chunk->text);
      EXPECT_EQ(a[i].score, b[i].score);  // bitwise: same fold order
    }
  };
  expect_same();  // miss path
  expect_same();  // hit path
  const auto stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(RetrievalLayer, CorpusVersionKeepsSharedCacheCollisionFree) {
  const auto cache = std::make_shared<llm::RetrievalCache>(
      cache::CacheOptions{.name = "retrieval"});
  llm::VectorStore guides(llm::chunk_documents(
      llm::algorithm_guide_corpus(), llm::ChunkStrategy::kBasic, 48));
  llm::VectorStore api(llm::chunk_documents(llm::qiskit_api_corpus(0.0),
                                            llm::ChunkStrategy::kBasic, 48));
  guides.attach_cache(cache);
  api.attach_cache(cache);
  ASSERT_NE(guides.content_version(), api.content_version());

  const std::string query = "measure qubit circuit";
  const auto from_guides = guides.retrieve(query, 4);
  const auto from_api = api.retrieve(query, 4);
  // Same query, same k, same shared cache — but the corpus version in
  // the key keeps the entries separate: each store's answer points into
  // its own chunk vector.
  for (const auto& hit : from_guides) {
    EXPECT_GE(hit.chunk, guides.chunks().data());
    EXPECT_LT(hit.chunk, guides.chunks().data() + guides.chunks().size());
  }
  for (const auto& hit : from_api) {
    EXPECT_GE(hit.chunk, api.chunks().data());
    EXPECT_LT(hit.chunk, api.chunks().data() + api.chunks().size());
  }
  EXPECT_EQ(cache->stats().misses, 2u);  // two distinct keys
}

// ---------------------------------------------------------------------------
// Analysis layer

TEST(AnalysisLayer, CachedReportsAreByteIdenticalToUncached) {
  const std::string good =
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }";
  const std::string bad = "circuit main(q: 1) { frobnicate q[0]; }";

  const agents::SemanticAnalyzerAgent uncached;
  agents::SemanticAnalyzerAgent cached;
  const auto cache = std::make_shared<agents::AnalysisCache>(
      cache::CacheOptions{.name = "analysis"});
  cached.set_analysis_cache(cache);

  for (const std::string& source : {good, bad}) {
    const auto reference = uncached.analyze(source);
    const auto miss = cached.analyze(source);
    const auto hit = cached.analyze(source);
    for (const auto* report : {&miss, &hit}) {
      EXPECT_EQ(report->syntactic_ok, reference.syntactic_ok);
      EXPECT_EQ(report->error_trace, reference.error_trace);
      EXPECT_EQ(report->diagnostics.size(), reference.diagnostics.size());
      EXPECT_EQ(report->circuit.has_value(), reference.circuit.has_value());
    }
  }
  const auto stats = cache->stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(AnalysisLayer, BehaviorCheckCachesTheJudgedDistribution) {
  const std::string source =
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }";
  agents::SemanticAnalyzerAgent agent;
  const auto cache = std::make_shared<agents::AnalysisCache>(
      cache::CacheOptions{.name = "analysis"});
  agent.set_analysis_cache(cache);
  const auto report = agent.analyze(source);
  ASSERT_TRUE(report.circuit.has_value());

  const agents::SemanticAnalyzerAgent uncached;
  const auto reference = sim::exact_distribution(*report.circuit);
  const auto pure = uncached.check_behavior(*report.circuit, reference);
  const auto miss = agent.check_behavior(*report.circuit, reference);
  const auto hit = agent.check_behavior(*report.circuit, reference);
  EXPECT_EQ(miss.matches, pure.matches);
  EXPECT_EQ(miss.tvd, pure.tvd);  // bitwise: same simulate, same judge
  EXPECT_EQ(hit.matches, miss.matches);
  EXPECT_EQ(hit.tvd, miss.tvd);
  // analyze() took one miss; the two check_behavior calls add one miss
  // (the simulate entry, salted into its own key namespace) + one hit.
  const auto stats = cache->stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(AnalysisLayer, LintConfigurationKeysEntriesApart) {
  const std::string source =
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }";
  agents::SemanticAnalyzerAgent::Options full_options;
  agents::SemanticAnalyzerAgent::Options degraded_options;
  degraded_options.analysis.abstract_lints = false;
  const agents::SemanticAnalyzerAgent full(full_options);
  const agents::SemanticAnalyzerAgent degraded(degraded_options);
  // The degraded-analyzer ladder rung shares the serving cache; distinct
  // options digests keep its entries from aliasing the full analyzer's.
  EXPECT_NE(full.analysis_key(source), degraded.analysis_key(source));
  EXPECT_EQ(full.analysis_key(source), full.analysis_key(source));
  EXPECT_NE(full.analysis_key(source), full.analysis_key(source + " "));
}

TEST(AnalysisLayer, CircuitDigestSeparatesCircuits) {
  sim::Circuit bell(2, 2);
  bell.h(0);
  bell.cx(0, 1);
  sim::Circuit ghz(3, 3);
  ghz.h(0);
  ghz.cx(0, 1);
  ghz.cx(1, 2);
  EXPECT_EQ(agents::circuit_digest(bell), agents::circuit_digest(bell));
  EXPECT_NE(agents::circuit_digest(bell), agents::circuit_digest(ghz));
  sim::Circuit bell_measured = bell;
  bell_measured.measure(0, 0);
  EXPECT_NE(agents::circuit_digest(bell), agents::circuit_digest(bell_measured));
}
