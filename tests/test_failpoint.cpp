// Tests for the deterministic fault-injection framework
// (common/failpoint.hpp): scenario grammar + canonical round-trip,
// per-site seeded triggering, guards, thread-local injector scoping and
// the determinism contract chaos runs rely on.

#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace qcgen::failpoint {
namespace {

std::shared_ptr<const Scenario> make_scenario(const std::string& spec) {
  return std::make_shared<const Scenario>(Scenario::parse(spec));
}

TEST(ScenarioParse, SingleClauseDefaults) {
  const Scenario s = Scenario::parse("llm.generate=error");
  ASSERT_EQ(s.sites.size(), 1u);
  EXPECT_EQ(s.sites[0].site, "llm.generate");
  EXPECT_EQ(s.sites[0].action, Action::kError);
  EXPECT_EQ(s.sites[0].probability, 1.0);
  EXPECT_EQ(s.sites[0].every_n, 0u);
  EXPECT_EQ(s.sites[0].min_pass, 0);
}

TEST(ScenarioParse, FullGrammar) {
  const Scenario s = Scenario::parse(
      " llm.generate = error(0.25) ; qec.decode=error(1.0)@pass>1 ;"
      " analyzer.parse=corrupt(0.5)@every=3 ; retrieval.query=delay(2.5)@p=0.1 ");
  ASSERT_EQ(s.sites.size(), 4u);
  // Sites come back sorted by name.
  EXPECT_EQ(s.sites[0].site, "analyzer.parse");
  EXPECT_EQ(s.sites[0].action, Action::kCorrupt);
  EXPECT_EQ(s.sites[0].every_n, 3u);
  EXPECT_EQ(s.sites[1].site, "llm.generate");
  EXPECT_EQ(s.sites[1].probability, 0.25);
  EXPECT_EQ(s.sites[2].site, "qec.decode");
  EXPECT_EQ(s.sites[2].min_pass, 1);
  EXPECT_EQ(s.sites[3].site, "retrieval.query");
  EXPECT_EQ(s.sites[3].action, Action::kDelay);
  EXPECT_EQ(s.sites[3].delay_units, 2.5);
  EXPECT_EQ(s.sites[3].probability, 0.1);
}

TEST(ScenarioParse, EmptyAndWhitespaceSpecsAreEmpty) {
  EXPECT_TRUE(Scenario::parse("").empty());
  EXPECT_TRUE(Scenario::parse("   ").empty());
  EXPECT_TRUE(Scenario::parse("\t \n").empty());
}

TEST(ScenarioParse, SingleTrailingSemicolonIsTolerated) {
  const Scenario bare = Scenario::parse("llm.generate=error(0.5)");
  EXPECT_EQ(Scenario::parse("llm.generate=error(0.5);"), bare);
  EXPECT_EQ(Scenario::parse("llm.generate=error(0.5); "), bare);
  EXPECT_EQ(Scenario::parse("a=error;b=delay(1.0);"),
            Scenario::parse("a=error;b=delay(1.0)"));
  // Canonical form never emits the trailing ';', so tolerating it keeps
  // parse(canonical(parse(x))) == parse(x) without widening canonical().
  EXPECT_EQ(Scenario::parse("a=error;").canonical(), "a=error(1)");
}

TEST(ScenarioParse, RejectsEmptyClauses) {
  const std::vector<std::string> bad = {
      ";",            // separator with no clauses
      " ;; ; ",       // separator-only
      ";a=error",     // leading empty clause
      "a=error;;",    // doubled trailing separator
      "a=error;;b=error",   // interior empty clause
      "a=error; ;b=error",  // interior whitespace clause
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW((void)Scenario::parse(spec), InvalidArgumentError)
        << "accepted: " << spec;
    std::string error;
    EXPECT_FALSE(Scenario::try_parse(spec, &error).has_value());
    EXPECT_NE(error.find("empty clause"), std::string::npos) << error;
  }
}

TEST(ScenarioParse, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "llm.generate",                     // missing '='
      "=error",                           // empty site
      "LLM.Generate=error",               // uppercase site
      "llm generate=error",               // space in site
      "llm.generate=explode",             // unknown action
      "llm.generate=error(1.5)",          // probability > 1
      "llm.generate=error(-0.1)",         // negative probability
      "llm.generate=error(nan)",          // non-finite
      "llm.generate=error(0.5",           // unclosed paren
      "llm.generate=error(abc)",          // non-numeric
      "llm.generate=delay(-1)",           // negative delay
      "llm.generate=error@every=0",       // every must be >= 1
      "llm.generate=error@every=-2",      // negative every
      "llm.generate=error@pass>9999999",  // pass bound too large
      "llm.generate=error@p=2",           // guard probability > 1
      "llm.generate=error@wat=1",         // unknown guard
      "a=error;a=error",                  // duplicate site
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW((void)Scenario::parse(spec), InvalidArgumentError)
        << "accepted: " << spec;
    std::string error;
    EXPECT_FALSE(Scenario::try_parse(spec, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(ScenarioParse, CanonicalFormRoundTrips) {
  const std::vector<std::string> specs = {
      "llm.generate=error(0.02);qec.decode=error(1.0)@pass>1",
      "a=corrupt(0.5)@every=7;b=delay(2.5)@p=0.125",
      "x_y-z.0=error",
  };
  for (const std::string& spec : specs) {
    const Scenario once = Scenario::parse(spec);
    const Scenario twice = Scenario::parse(once.canonical());
    EXPECT_EQ(once, twice) << spec;
    EXPECT_EQ(once.canonical(), twice.canonical()) << spec;
  }
}

TEST(ScenarioFind, LooksUpBySite) {
  const Scenario s = Scenario::parse("a=error;b=delay(1.0)");
  ASSERT_NE(s.find("a"), nullptr);
  EXPECT_EQ(s.find("a")->action, Action::kError);
  EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(Injector, DeterministicAcrossInstancesWithSameSeed) {
  const auto scenario = make_scenario("site.a=error(0.3);site.b=error(0.7)");
  Injector x(scenario, 42);
  Injector y(scenario, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(x.hit("site.a", 0).has_value(), y.hit("site.a", 0).has_value());
    EXPECT_EQ(x.hit("site.b", 0).has_value(), y.hit("site.b", 0).has_value());
  }
  EXPECT_EQ(x.fired(), y.fired());
  EXPECT_GT(x.fired(), 0u);
  EXPECT_LT(x.fired(), 400u);
}

TEST(Injector, DifferentSeedsProduceDifferentPatterns) {
  const auto scenario = make_scenario("site.a=error(0.5)");
  Injector x(scenario, 1);
  Injector y(scenario, 2);
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    if (x.hit("site.a", 0).has_value() != y.hit("site.a", 0).has_value()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Injector, SiteStreamsAreIndependent) {
  // Hitting an unrelated site must not perturb another site's stream.
  const auto lone = make_scenario("site.a=error(0.5)");
  const auto both = make_scenario("site.a=error(0.5);site.b=error(0.5)");
  Injector x(lone, 9);
  Injector y(both, 9);
  for (int i = 0; i < 100; ++i) {
    (void)y.hit("site.b", 0);  // interleave traffic on the other site
    EXPECT_EQ(x.hit("site.a", 0).has_value(), y.hit("site.a", 0).has_value())
        << "hit " << i;
  }
}

TEST(Injector, EveryNFiresOnExactMultiples) {
  const auto scenario = make_scenario("site.a=error@every=3");
  Injector injector(scenario, 0);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(injector.hit("site.a", 0).has_value());
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST(Injector, PassGuardSuppressesEarlyPasses) {
  const auto scenario = make_scenario("site.a=error(1.0)@pass>1");
  Injector injector(scenario, 0);
  EXPECT_FALSE(injector.hit("site.a", 0).has_value());
  EXPECT_FALSE(injector.hit("site.a", 1).has_value());
  EXPECT_TRUE(injector.hit("site.a", 2).has_value());
}

TEST(Injector, DelayChargesBudgetUnits) {
  const auto scenario = make_scenario("site.a=delay(2.5)");
  Injector injector(scenario, 0);
  EXPECT_EQ(injector.delay_units_charged(), 0.0);
  const auto hit = injector.hit("site.a", 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, Action::kDelay);
  EXPECT_EQ(hit->delay_units, 2.5);
  (void)injector.hit("site.a", 0);
  EXPECT_EQ(injector.delay_units_charged(), 5.0);
}

TEST(Injector, CorruptHitsCarrySeededStreams) {
  const auto scenario = make_scenario("site.a=corrupt(1.0)");
  Injector x(scenario, 13);
  Injector y(scenario, 13);
  const auto hx1 = x.hit("site.a", 0);
  const auto hx2 = x.hit("site.a", 0);
  const auto hy1 = y.hit("site.a", 0);
  ASSERT_TRUE(hx1.has_value() && hx2.has_value() && hy1.has_value());
  EXPECT_EQ(hx1->action, Action::kCorrupt);
  EXPECT_EQ(hx1->corrupt_seed, hy1->corrupt_seed);  // same seed, same draw
  EXPECT_NE(hx1->corrupt_seed, hx2->corrupt_seed);  // stream advances
}

TEST(Injector, UnarmedSiteNeverFires) {
  const auto scenario = make_scenario("site.a=error(1.0)");
  Injector injector(scenario, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.hit("site.other", 0).has_value());
  }
}

TEST(InjectorScope, InstallsAndRestoresThreadLocally) {
  EXPECT_EQ(current_injector(), nullptr);
  const auto scenario = make_scenario("site.a=error(1.0)");
  Injector injector(scenario, 0);
  {
    InjectorScope scope(&injector);
    EXPECT_EQ(current_injector(), &injector);
    {
      InjectorScope inner(nullptr);  // explicit dormant scope
      EXPECT_EQ(current_injector(), nullptr);
    }
    EXPECT_EQ(current_injector(), &injector);
  }
  EXPECT_EQ(current_injector(), nullptr);
}

TEST(InjectorScope, BindingIsPerThread) {
  const auto scenario = make_scenario("site.a=error(1.0)");
  Injector injector(scenario, 0);
  InjectorScope scope(&injector);
  Injector* seen = &injector;
  std::thread other([&seen] { seen = current_injector(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // the other thread never installed one
  EXPECT_EQ(current_injector(), &injector);
}

TEST(FailPoints, DormantCheckAndTripAreNoOps) {
  ASSERT_EQ(current_injector(), nullptr);
  EXPECT_FALSE(check("llm.generate").has_value());
  EXPECT_NO_THROW((void)trip("llm.generate"));
}

#if QCGEN_FAILPOINTS_ENABLED

TEST(FailPoints, TripThrowsInjectedFaultWithSite) {
  const auto scenario = make_scenario("llm.generate=error(1.0)");
  Injector injector(scenario, 0);
  InjectorScope scope(&injector);
  try {
    (void)trip("llm.generate");
    FAIL() << "trip did not throw";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.site(), "llm.generate");
    EXPECT_NE(std::string(fault.what()).find("llm.generate"),
              std::string::npos);
  }
}

TEST(FailPoints, TripReturnsNonErrorHits) {
  const auto scenario = make_scenario("a=delay(1.5);b=corrupt(1.0)");
  Injector injector(scenario, 0);
  InjectorScope scope(&injector);
  const auto delay = trip("a");
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(delay->action, Action::kDelay);
  const auto corrupt = trip("b");
  ASSERT_TRUE(corrupt.has_value());
  EXPECT_EQ(corrupt->action, Action::kCorrupt);
  EXPECT_EQ(injector.delay_units_charged(), 1.5);
}

TEST(Injector, ConcurrentHitsAreSafeAndCounted) {
  // Thread-safety check (meaningful under TSan): many threads hammering
  // one injector must not race; with every=1 each hit fires exactly once
  // so the fired() count is exact.
  const auto scenario = make_scenario("site.a=error@every=1");
  Injector injector(scenario, 0);
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        EXPECT_TRUE(injector.hit("site.a", 0).has_value());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(injector.fired(),
            static_cast<std::uint64_t>(kThreads) * kHitsPerThread);
}

#endif  // QCGEN_FAILPOINTS_ENABLED

}  // namespace
}  // namespace qcgen::failpoint
