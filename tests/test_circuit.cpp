// Unit tests for the circuit IR and the reference circuit library.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/circuit.hpp"

namespace qcgen::sim {
namespace {

TEST(Circuit, ConstructionValidation) {
  EXPECT_THROW(Circuit(0, 0), InvalidArgumentError);
  Circuit c(2, 2);
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_EQ(c.num_clbits(), 2u);
  EXPECT_TRUE(c.empty());
}

TEST(Circuit, AppendValidatesQubitRange) {
  Circuit c(2, 2);
  EXPECT_THROW(c.h(2), InvalidArgumentError);
  EXPECT_THROW(c.cx(0, 5), InvalidArgumentError);
  c.h(1);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, AppendRejectsDuplicateOperands) {
  Circuit c(3, 3);
  EXPECT_THROW(c.cx(1, 1), InvalidArgumentError);
  EXPECT_THROW(c.ccx(0, 2, 2), InvalidArgumentError);
}

TEST(Circuit, AppendValidatesParamCount) {
  Circuit c(1, 1);
  Operation op;
  op.kind = GateKind::kRZ;
  op.qubits = {0};
  EXPECT_THROW(c.append(op), InvalidArgumentError);  // missing param
  op.params = {0.5};
  c.append(op);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, MeasureRequiresClbit) {
  Circuit c(1, 1);
  Operation op;
  op.kind = GateKind::kMeasure;
  op.qubits = {0};
  EXPECT_THROW(c.append(op), InvalidArgumentError);
  op.clbit = 0;
  c.append(op);
  Operation gate;
  gate.kind = GateKind::kX;
  gate.qubits = {0};
  gate.clbit = 0;  // non-measure with clbit target
  EXPECT_THROW(c.append(gate), InvalidArgumentError);
}

TEST(Circuit, MeasureAllNeedsEnoughClbits) {
  Circuit c(3, 2);
  EXPECT_THROW(c.measure_all(), InvalidArgumentError);
  Circuit ok(3, 3);
  ok.measure_all();
  EXPECT_EQ(ok.size(), 3u);
}

TEST(Circuit, ConditionValidation) {
  Circuit c(2, 1);
  Operation op;
  op.kind = GateKind::kX;
  op.qubits = {0};
  op.condition = Condition{3, true};  // clbit out of range
  EXPECT_THROW(c.append(op), InvalidArgumentError);
  op.condition = Condition{0, true};
  c.append(op);
  EXPECT_TRUE(c.has_conditions());
}

TEST(Circuit, DepthComputation) {
  Circuit c(3, 3);
  c.h(0);
  c.h(1);
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);
  EXPECT_EQ(c.depth(), 2u);
  c.x(2);
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, BarrierSynchronisesDepth) {
  Circuit c(2, 2);
  c.h(0);
  c.barrier();
  c.x(1);
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, CountOpsExcludesBarrier) {
  Circuit c(2, 2);
  c.h(0);
  c.h(1);
  c.barrier();
  c.cx(0, 1);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at(GateKind::kH), 2u);
  EXPECT_EQ(counts.at(GateKind::kCX), 1u);
  EXPECT_EQ(counts.count(GateKind::kBarrier), 0u);
}

TEST(Circuit, MultiQubitGateCount) {
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.ccx(0, 1, 2);
  c.measure_all();
  EXPECT_EQ(c.multi_qubit_gate_count(), 2u);
}

TEST(Circuit, RequiresTrajectoriesDetection) {
  Circuit plain(2, 2);
  plain.h(0);
  plain.measure_all();
  EXPECT_FALSE(plain.requires_trajectories());

  Circuit midmeas(2, 2);
  midmeas.measure(0, 0);
  midmeas.x(0);
  EXPECT_TRUE(midmeas.requires_trajectories());

  Circuit with_reset(1, 1);
  with_reset.reset(0);
  EXPECT_TRUE(with_reset.requires_trajectories());

  EXPECT_TRUE(circuits::teleportation(0.5).requires_trajectories());
}

TEST(Circuit, IsCliffordClassification) {
  Circuit clifford(2, 2);
  clifford.h(0);
  clifford.cx(0, 1);
  clifford.s(1);
  clifford.measure_all();
  EXPECT_TRUE(clifford.is_clifford());
  clifford.t(0);
  EXPECT_FALSE(clifford.is_clifford());
}

TEST(Circuit, ComposeAppendsOps) {
  Circuit a(3, 3);
  a.h(0);
  Circuit b(2, 2);
  b.cx(0, 1);
  a.compose(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit too_big(4, 4);
  EXPECT_THROW(b.compose(too_big), InvalidArgumentError);
}

TEST(Circuit, ToStringMentionsOps) {
  Circuit c(2, 2);
  c.rz(0.25, 1);
  c.measure(1, 0);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("rz(0.25) q1"), std::string::npos);
  EXPECT_NE(s.find("measure q1 -> c0"), std::string::npos);
}

TEST(ReferenceCircuits, BellPairStructure) {
  const Circuit c = circuits::bell_pair();
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_TRUE(c.has_measurements());
  EXPECT_TRUE(c.is_clifford());
}

TEST(ReferenceCircuits, GhzSizes) {
  for (std::size_t n = 2; n <= 6; ++n) {
    const Circuit c = circuits::ghz(n);
    EXPECT_EQ(c.num_qubits(), n);
    EXPECT_EQ(c.count_ops().at(GateKind::kCX), n - 1);
  }
  EXPECT_THROW(circuits::ghz(1), InvalidArgumentError);
}

TEST(ReferenceCircuits, DeutschJozsaOracleChoice) {
  const Circuit constant = circuits::deutsch_jozsa(3, true);
  const Circuit balanced = circuits::deutsch_jozsa(3, false);
  EXPECT_EQ(constant.count_ops().count(GateKind::kCX), 0u);
  EXPECT_EQ(balanced.count_ops().at(GateKind::kCX), 3u);
  EXPECT_EQ(constant.num_qubits(), 4u);
}

TEST(ReferenceCircuits, GroverParameterValidation) {
  EXPECT_THROW(circuits::grover(1, 0, 1), InvalidArgumentError);
  EXPECT_THROW(circuits::grover(2, 4, 1), InvalidArgumentError);
  const Circuit c = circuits::grover(3, 5, 2);
  EXPECT_EQ(c.num_qubits(), 3u);
}

TEST(ReferenceCircuits, QftGateCount) {
  const Circuit c = circuits::qft(4);
  EXPECT_EQ(c.count_ops().at(GateKind::kH), 4u);
  EXPECT_EQ(c.count_ops().at(GateKind::kCPhase), 6u);
  EXPECT_EQ(c.count_ops().at(GateKind::kSwap), 2u);
}

TEST(ReferenceCircuits, TeleportationUsesConditions) {
  const Circuit c = circuits::teleportation(1.0);
  EXPECT_TRUE(c.has_conditions());
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_clbits(), 3u);
}

TEST(ReferenceCircuits, BernsteinVaziraniSecretEncoding) {
  const Circuit c = circuits::bernstein_vazirani(0b101, 3);
  EXPECT_EQ(c.count_ops().at(GateKind::kCX), 2u);
  EXPECT_THROW(circuits::bernstein_vazirani(8, 3), InvalidArgumentError);
}

TEST(ReferenceCircuits, QuantumWalkBounds) {
  const Circuit c = circuits::quantum_walk(2, 3);
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_THROW(circuits::quantum_walk(3, 1), InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::sim
