// Tests for the QEC agent's ResourcePlan: the code-distance solve
// against a target logical error rate, magic-state factory sizing from
// T-count/T-depth, routing overhead from the coupling map, and the JSON
// serialisation the bench artifacts carry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agents/qec_agent.hpp"
#include "agents/topology.hpp"
#include "common/json.hpp"
#include "qasm/analysis/resources.hpp"

namespace qcgen::agents {
namespace {

using qasm::analysis::ResourceSummary;
using qasm::analysis::TwoQubitPair;

/// A synthetic program digest: `pairs` defaults to a single adjacent
/// coupling so routing stays out of the way unless a test opts in.
ResourceSummary make_summary(std::size_t qubits, std::size_t depth,
                             std::size_t t_count, std::size_t t_depth,
                             std::vector<TwoQubitPair> pairs = {{0, 1, 1}}) {
  ResourceSummary summary;
  summary.computed = true;
  summary.qubits = qubits;
  summary.qubits_used = qubits;
  summary.gate_count = depth * qubits;
  summary.t_count = t_count;
  summary.t_depth = t_depth;
  summary.two_qubit_count = pairs.size();
  summary.depth = depth;
  summary.two_qubit_pairs = std::move(pairs);
  return summary;
}

QecPlan plan_with(const DeviceTopology& device, const ResourceSummary& summary,
                  double target = 1e-6, int probe_distance = 3) {
  QecDecoderAgent::Options options;
  options.target_distance = probe_distance;
  options.trials = 400;
  options.seed = 99;
  options.target_logical_error = target;
  return QecDecoderAgent(options).plan_for(device, &summary);
}

TEST(QecResourcePlan, ComputedOnlyWhenAProgramIsSupplied) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);
  QecDecoderAgent::Options options;
  options.trials = 400;
  const QecPlan bare = QecDecoderAgent(options).plan_for(device);
  ASSERT_TRUE(bare.feasible);
  EXPECT_FALSE(bare.resources.computed);

  const ResourceSummary summary = make_summary(3, 10, 4, 2);
  const QecPlan with = QecDecoderAgent(options).plan_for(device, &summary);
  ASSERT_TRUE(with.feasible);
  EXPECT_TRUE(with.resources.computed);
  EXPECT_EQ(with.resources.logical_qubits, 3u);
  EXPECT_EQ(with.resources.circuit_depth, 10u);
}

TEST(QecResourcePlan, InfeasibleDeviceCarriesNoEstimate) {
  // Linear chains host no 2D surface code at all.
  const DeviceTopology device = DeviceTopology::linear(20);
  const ResourceSummary summary = make_summary(2, 5, 0, 0);
  const QecPlan plan = plan_with(device, summary);
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.resources.computed);
}

TEST(QecResourcePlan, DistanceSolveIsMonotoneInTheTarget) {
  // Brisbane noise keeps the measured logical error per round nonzero,
  // so the solve actually has to climb the distance ladder. (Ideal-noise
  // grids measure zero and trivially meet any target at distance 3.)
  const DeviceTopology device = DeviceTopology::ibm_brisbane();
  const ResourceSummary summary = make_summary(3, 20, 8, 4);
  const QecPlan loose = plan_with(device, summary, /*target=*/1e-1);
  const QecPlan tight = plan_with(device, summary, /*target=*/1e-9);
  ASSERT_TRUE(loose.resources.computed);
  ASSERT_TRUE(tight.resources.computed);
  EXPECT_LE(loose.resources.code_distance, tight.resources.code_distance);
  // Solved distances are odd and within the device's range.
  for (const QecPlan* plan : {&loose, &tight}) {
    EXPECT_GE(plan->resources.code_distance, 3);
    EXPECT_LE(plan->resources.code_distance,
              device.max_surface_code_distance());
    EXPECT_EQ(plan->resources.code_distance % 2, 1);
  }
  // A loose target is met; projected error respects the model.
  EXPECT_TRUE(loose.resources.target_met);
  if (tight.resources.target_met) {
    EXPECT_LE(tight.resources.projected_error_per_round,
              tight.resources.target_logical_error);
  }
}

TEST(QecResourcePlan, UnreachableTargetFallsBackToMaxDistance) {
  // At Brisbane noise Lambda is barely above 1, so a 1e-300 target is
  // far beyond what the device's distance range can suppress.
  const DeviceTopology device = DeviceTopology::ibm_brisbane();
  const ResourceSummary summary = make_summary(2, 8, 0, 0);
  const QecPlan plan = plan_with(device, summary, /*target=*/1e-300);
  ASSERT_TRUE(plan.resources.computed);
  EXPECT_FALSE(plan.resources.target_met);
  EXPECT_EQ(plan.resources.code_distance,
            device.max_surface_code_distance());
}

TEST(QecResourcePlan, FactoriesTrackMagicStateDemand) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);

  // Clifford-only program: no magic states, no factories.
  const QecPlan clifford = plan_with(device, make_summary(3, 10, 0, 0));
  ASSERT_TRUE(clifford.resources.computed);
  EXPECT_EQ(clifford.resources.t_equivalents, 0u);
  EXPECT_EQ(clifford.resources.factory_count, 0u);
  EXPECT_EQ(clifford.resources.factory_physical_qubits, 0u);

  // Any T gate forces at least one factory.
  const QecPlan one_t = plan_with(device, make_summary(3, 10, 1, 1));
  ASSERT_TRUE(one_t.resources.computed);
  EXPECT_EQ(one_t.resources.t_equivalents, 1u);
  EXPECT_GE(one_t.resources.factory_count, 1u);

  // More T work at the same depth needs at least as many factories.
  const QecPlan heavy = plan_with(device, make_summary(3, 10, 40, 1));
  ASSERT_TRUE(heavy.resources.computed);
  EXPECT_GE(heavy.resources.factory_count, one_t.resources.factory_count);

  // The T-depth parallelism cap binds: serialised T work (t_depth ==
  // t_count) never needs more than ceil(t/t_depth) = 1 extra pipeline.
  const QecPlan serial = plan_with(device, make_summary(3, 40, 40, 40));
  ASSERT_TRUE(serial.resources.computed);
  EXPECT_EQ(serial.resources.factory_count, 1u);
}

TEST(QecResourcePlan, ToffoliAndRotationsConvertToMagicStates) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);
  ResourceSummary summary = make_summary(3, 10, 2, 1);
  summary.ccx_count = 3;
  summary.rotation_count = 1;
  const QecPlan plan = plan_with(device, summary);
  ASSERT_TRUE(plan.resources.computed);
  // 2 explicit T + 3 * 7 per Toffoli + 1 * 30 per rotation.
  EXPECT_EQ(plan.resources.t_equivalents, 2u + 21u + 30u);
}

TEST(QecResourcePlan, RoutingOverheadFollowsTheCouplingMap) {
  // Fully-connected device: every pair is adjacent, zero routing.
  const DeviceTopology full = DeviceTopology::fully_connected(25);
  const QecPlan direct = plan_with(
      full, make_summary(4, 10, 0, 0, {{0, 1, 5}, {0, 3, 2}}));
  ASSERT_TRUE(direct.resources.computed);
  EXPECT_EQ(direct.resources.routing_extra_cx, 0u);

  // Grid device, far-apart pair: qubits 0 and 12 sit 12 hops apart on
  // the first row, so each cx pays 3 swaps per intermediate hop.
  const DeviceTopology grid = DeviceTopology::grid(13, 13);
  const QecPlan routed =
      plan_with(grid, make_summary(13, 10, 0, 0, {{0, 12, 2}}));
  ASSERT_TRUE(routed.resources.computed);
  EXPECT_EQ(routed.resources.routing_extra_cx, 2u * 3u * 11u);

  // Adjacent pair on the same grid: free.
  const QecPlan adjacent =
      plan_with(grid, make_summary(2, 10, 0, 0, {{0, 1, 7}}));
  ASSERT_TRUE(adjacent.resources.computed);
  EXPECT_EQ(adjacent.resources.routing_extra_cx, 0u);
}

TEST(QecResourcePlan, SpaceAndTimeAccountingIsConsistent) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);
  const QecPlan plan = plan_with(device, make_summary(3, 10, 4, 2));
  const ResourcePlan& res = plan.resources;
  ASSERT_TRUE(res.computed);
  const auto d = static_cast<std::size_t>(res.code_distance);
  EXPECT_EQ(res.physical_qubits_per_logical, 2 * d * d - 1);
  EXPECT_EQ(res.data_physical_qubits,
            res.logical_qubits * res.physical_qubits_per_logical);
  EXPECT_EQ(res.routing_physical_qubits,
            ((res.logical_qubits + 1) / 2) * res.physical_qubits_per_logical);
  EXPECT_EQ(res.total_physical_qubits,
            res.data_physical_qubits + res.routing_physical_qubits +
                res.factory_physical_qubits);
  EXPECT_EQ(res.logical_time_rounds, res.circuit_depth * d);
  EXPECT_EQ(res.factory_rounds_per_state, 6 * d);
  EXPECT_DOUBLE_EQ(res.space_time_volume,
                   static_cast<double>(res.total_physical_qubits) *
                       static_cast<double>(res.logical_time_rounds));
}

TEST(QecResourcePlan, PlanIsDeterministicForAFixedSeed) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);
  const ResourceSummary summary = make_summary(3, 12, 6, 3);
  const Json a = resource_plan_to_json(plan_with(device, summary).resources);
  const Json b = resource_plan_to_json(plan_with(device, summary).resources);
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(QecResourcePlan, JsonCarriesEveryField) {
  const DeviceTopology device = DeviceTopology::grid(13, 13);
  const QecPlan plan = plan_with(device, make_summary(3, 10, 4, 2));
  const std::string json = resource_plan_to_json(plan.resources).dump();
  for (const char* key :
       {"computed", "logical_qubits", "circuit_depth", "t_count", "t_depth",
        "t_equivalents", "two_qubit_count", "target_logical_error",
        "code_distance", "target_met", "projected_error_per_round",
        "physical_qubits_per_logical", "data_physical_qubits",
        "routing_physical_qubits", "factory_count",
        "factory_physical_qubits", "total_physical_qubits",
        "factory_rounds_per_state", "logical_time_rounds",
        "routing_extra_cx", "space_time_volume"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
  }
}

}  // namespace
}  // namespace qcgen::agents
