// Unit tests for the tracing/metrics layer (common/trace.hpp): RAII span
// semantics (nesting, exception unwinding), counter/histogram
// aggregation, sink merging (the determinism contract), thread-local
// binding, ThreadPool scheduler stats, and the Chrome trace-event export.

#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"

namespace qcgen::trace {
namespace {

#if QCGEN_TRACE_ENABLED
// Tests in this block exercise the TraceSpan/Metrics instrumentation
// macro-gated by QCGEN_TRACE; under -DQCGEN_TRACE=OFF they compile to
// no-ops by design, so the expectations only hold when enabled.

TEST(TraceSpan, RecordsIntoInstalledSink) {
  TraceSink sink;
  {
    SinkScope scope(&sink);
    TraceSpan span("stage.a");
    TraceSpan again("stage.a");
  }
  const Summary summary = sink.summary();
  ASSERT_EQ(summary.span_counts.size(), 1u);
  EXPECT_EQ(summary.span_counts.at("stage.a"), 2u);
}

TEST(TraceSpan, NoSinkIsANoOp) {
  // With no sink installed a span must not crash or record anywhere.
  TraceSpan span("orphan");
  Metrics::counter("orphan.counter");
  Metrics::observe("orphan.histogram", 1.0);
  SUCCEED();
}

TEST(TraceSpan, NestingDepthIsCaptured) {
  TraceSink sink(/*keep_events=*/true);
  {
    SinkScope scope(&sink);
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      TraceSpan innermost("innermost");
    }
  }
  // Spans record on close, so the deepest closes first.
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "innermost");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0u);
}

TEST(TraceSpan, RecordsWhenScopeUnwindsThroughException) {
  TraceSink sink;
  SinkScope scope(&sink);
  try {
    TraceSpan span("doomed");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(sink.summary().span_counts.at("doomed"), 1u);
  // Depth bookkeeping must also have unwound: a fresh span sits at 0.
  {
    TraceSpan after("after");
  }
  TraceSink probe(/*keep_events=*/true);
  {
    SinkScope inner(&probe);
    TraceSpan check("check");
  }
  EXPECT_EQ(probe.events().at(0).depth, 0u);
}

TEST(Metrics, CountersAndHistogramsAggregate) {
  TraceSink sink;
  {
    SinkScope scope(&sink);
    Metrics::counter("hits");
    Metrics::counter("hits", 4);
    Metrics::counter("misses", -2);
    Metrics::observe("tvd", 0.25);
    Metrics::observe("tvd", 0.75);
  }
  const Summary summary = sink.summary();
  EXPECT_EQ(summary.counters.at("hits"), 5);
  EXPECT_EQ(summary.counters.at("misses"), -2);
  const HistogramSummary& tvd = summary.histograms.at("tvd");
  EXPECT_EQ(tvd.count, 2u);
  EXPECT_DOUBLE_EQ(tvd.sum, 1.0);
  EXPECT_DOUBLE_EQ(tvd.min, 0.25);
  EXPECT_DOUBLE_EQ(tvd.max, 0.75);
}

TEST(TraceSink, CountersAggregateAcrossPoolWorkers) {
  // One shared sink, many workers: recording is thread-safe, so the
  // totals must be exact regardless of interleaving.
  TraceSink sink;
  constexpr std::size_t kTasks = 256;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    SinkScope scope(&sink);
    TraceSpan span("task");
    Metrics::counter("work", 2);
  });
  const Summary summary = sink.summary();
  EXPECT_EQ(summary.span_counts.at("task"), kTasks);
  EXPECT_EQ(summary.counters.at("work"),
            static_cast<std::int64_t>(2 * kTasks));
}

TEST(TraceSink, StageSecondsTracksSpanDurations) {
  TraceSink sink;
  {
    SinkScope scope(&sink);
    TraceSpan span("timed");
  }
  const auto stages = sink.stage_seconds();
  ASSERT_EQ(stages.count("timed"), 1u);
  EXPECT_GE(stages.at("timed"), 0.0);
}

#endif  // QCGEN_TRACE_ENABLED

TEST(SinkScope, RestoresPreviousBinding) {
  TraceSink outer_sink;
  TraceSink inner_sink;
  SinkScope outer(&outer_sink);
  EXPECT_EQ(current_sink(), &outer_sink);
  {
    SinkScope inner(&inner_sink);
    EXPECT_EQ(current_sink(), &inner_sink);
    {
      SinkScope off(nullptr);  // optional-sink call sites pass null
      EXPECT_EQ(current_sink(), nullptr);
      Metrics::counter("dropped");
    }
    EXPECT_EQ(current_sink(), &inner_sink);
  }
  EXPECT_EQ(current_sink(), &outer_sink);
  EXPECT_TRUE(inner_sink.summary().counters.empty());
}

TEST(TraceSink, MergePreservesTotalsAndOrderIndependentData) {
  // Direct sink API (always live, even under -DQCGEN_TRACE=OFF).
  TraceSink a;
  TraceSink b;
  a.record_span("stage", 0, 10, 0, 0);
  a.add_counter("n", 3);
  a.observe("h", 1.0);
  b.record_span("stage", 5, 20, 1, 0);
  b.add_counter("n", 4);
  b.observe("h", -1.0);
  TraceSink merged;
  merged.merge(a);
  merged.merge(b);
  const Summary summary = merged.summary();
  EXPECT_EQ(summary.span_counts.at("stage"), 2u);
  EXPECT_EQ(summary.counters.at("n"), 7);
  EXPECT_EQ(summary.histograms.at("h").count, 2u);
  EXPECT_DOUBLE_EQ(summary.histograms.at("h").min, -1.0);
  EXPECT_DOUBLE_EQ(summary.histograms.at("h").max, 1.0);
  // Same children, same order -> bit-identical summary (the determinism
  // contract run_trial_matrix relies on).
  TraceSink merged_again;
  merged_again.merge(a);
  merged_again.merge(b);
  EXPECT_EQ(merged.summary(), merged_again.summary());
  EXPECT_EQ(merged.summary_json().dump(), merged_again.summary_json().dump());
}

TEST(TraceSink, SummaryJsonPrintsExactIntegers) {
  TraceSink sink;
  // A counter beyond double's 2^53 mantissa must round-trip exactly.
  sink.add_counter("big", static_cast<std::int64_t>(9007199254740993LL));
  const std::string json = sink.summary_json().dump();
  EXPECT_NE(json.find("\"big\":9007199254740993"), std::string::npos);
}

TEST(ThreadPool, SchedulerStatsCountEveryTask) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  pool.parallel_for(kTasks, [](std::size_t) {});
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  // Steals are timing-dependent, but never exceed executions.
  EXPECT_LE(pool.tasks_stolen(), pool.tasks_executed());
  EXPECT_EQ(pool.size(), 4u);
}

TEST(TraceSink, EventCapDropsButStillCounts) {
  TraceSink sink(/*keep_events=*/true, /*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    sink.record_span("s", static_cast<std::uint64_t>(i), 1, 0, 0);
  }
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events_dropped(), 3u);
  // The deterministic summary is unaffected by the event cap.
  EXPECT_EQ(sink.summary().span_counts.at("s"), 5u);
}

TEST(TraceSink, ChromeExportIsWellFormed) {
  TraceSink sink(/*keep_events=*/true);
  sink.record_span("export.me", 1000, 500, /*thread_tag=*/7, /*depth=*/0);
  const std::string chrome = sink.chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"export.me\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(chrome.find("\"qcgenDroppedEvents\":0"), std::string::npos);
}

TEST(SchedulerStats, MergeSumsWorkAndKeepsWidestPool) {
  SchedulerStats a{4, 100, 10};
  SchedulerStats b{8, 50, 5};
  a.merge(b);
  EXPECT_EQ(a.workers, 8u);
  EXPECT_EQ(a.tasks_executed, 150u);
  EXPECT_EQ(a.tasks_stolen, 15u);
}

TEST(Summary, EmptyAndEquality) {
  Summary a;
  EXPECT_TRUE(a.empty());
  a.counters["x"] = 1;
  EXPECT_FALSE(a.empty());
  Summary b;
  b.counters["x"] = 1;
  EXPECT_EQ(a, b);
  b.counters["x"] = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace qcgen::trace
