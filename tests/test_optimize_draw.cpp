// Tests for the peephole optimizer and the ASCII circuit drawer.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "sim/draw.hpp"
#include "sim/statevector.hpp"
#include "transpile/optimize.hpp"
#include "transpile/transpiler.hpp"

namespace qcgen {
namespace {

using sim::Circuit;
using sim::GateKind;
using transpile::optimize;
using transpile::OptimizeStats;

TEST(Optimize, CancelsAdjacentSelfInversePairs) {
  Circuit c(2, 2);
  c.x(0);
  c.x(0);
  c.cx(0, 1);
  c.cx(0, 1);
  c.measure_all();
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  EXPECT_EQ(stats.cancelled_pairs, 2u);
  EXPECT_EQ(out.count_ops().count(GateKind::kX), 0u);
  EXPECT_EQ(out.count_ops().count(GateKind::kCX), 0u);
}

TEST(Optimize, MergesRotationsAndDropsIdentity) {
  Circuit c(1, 1);
  c.rz(0.3, 0);
  c.rz(-0.3, 0);
  c.measure(0, 0);
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  EXPECT_EQ(out.count_ops().count(GateKind::kRZ), 0u);
  EXPECT_GE(stats.merged_rotations, 1u);
}

TEST(Optimize, MergesAcrossUnrelatedQubits) {
  Circuit c(2, 2);
  c.rz(0.25, 0);
  c.x(1);  // unrelated wire: must not block the merge
  c.rz(0.5, 0);
  c.measure_all();
  const Circuit out = optimize(c);
  const auto& ops = out.operations();
  std::size_t rz_count = 0;
  double angle = 0.0;
  for (const auto& op : ops) {
    if (op.kind == GateKind::kRZ) {
      ++rz_count;
      angle = op.params[0];
    }
  }
  EXPECT_EQ(rz_count, 1u);
  EXPECT_NEAR(angle, 0.75, 1e-12);
}

TEST(Optimize, BarrierBlocksCancellation) {
  Circuit c(1, 1);
  c.x(0);
  c.barrier();
  c.x(0);
  c.measure(0, 0);
  const Circuit out = optimize(c);
  EXPECT_EQ(out.count_ops().at(GateKind::kX), 2u);
}

TEST(Optimize, SharedQubitBlocksCancellation) {
  Circuit c(2, 2);
  c.cx(0, 1);
  c.x(1);  // touches the target: blocks
  c.cx(0, 1);
  c.measure_all();
  const Circuit out = optimize(c);
  EXPECT_EQ(out.count_ops().at(GateKind::kCX), 2u);
}

TEST(Optimize, ConditionedOpsAreUntouchable) {
  Circuit c = sim::circuits::teleportation(0.8);
  const Circuit native = transpile::decompose(c);
  const Circuit out = optimize(native);
  EXPECT_TRUE(out.has_conditions());
  EXPECT_TRUE(transpile::equivalent(c, out));
}

TEST(Optimize, PreservesBehaviourOnAllWorkloads) {
  for (llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Circuit circuit = qasm::build_circuit(llm::gold_program(task));
    const Circuit native = transpile::decompose(circuit);
    OptimizeStats stats;
    const Circuit out = optimize(native, &stats);
    EXPECT_LE(stats.gates_after, stats.gates_before);
    EXPECT_TRUE(transpile::equivalent(circuit, out))
        << llm::algorithm_name(id);
  }
}

TEST(Optimize, ShrinksRoutedCircuits) {
  // Routed SWAP chains next to CX gates create cancellation fodder.
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kShorPeriodFinding;
  const Circuit circuit = qasm::build_circuit(llm::gold_program(task));
  const auto device = agents::DeviceTopology::linear(8);
  const auto routed = transpile::transpile(circuit, device);
  OptimizeStats stats;
  const Circuit out = optimize(routed.circuit, &stats);
  EXPECT_LT(stats.gates_after, stats.gates_before);
}

TEST(Draw, RendersWiresAndGates) {
  const std::string art = sim::draw(sim::circuits::bell_pair());
  EXPECT_NE(art.find("q0:"), std::string::npos);
  EXPECT_NE(art.find("q1:"), std::string::npos);
  EXPECT_NE(art.find("H"), std::string::npos);
  EXPECT_NE(art.find("*"), std::string::npos);   // CX control
  EXPECT_NE(art.find("X"), std::string::npos);   // CX target
  EXPECT_NE(art.find("M0"), std::string::npos);
  EXPECT_NE(art.find("M1"), std::string::npos);
}

TEST(Draw, LinesHaveEqualLength) {
  const std::string art =
      sim::draw(sim::circuits::grover(3, 5, 1));
  std::size_t expected = 0;
  std::istringstream stream(art);
  std::string line;
  while (std::getline(stream, line)) {
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected) << line;
  }
}

TEST(Draw, ConditionsAnnotated) {
  const std::string art = sim::draw(sim::circuits::teleportation(0.5));
  EXPECT_NE(art.find("?c1"), std::string::npos);
  EXPECT_NE(art.find("?c0"), std::string::npos);
}

TEST(Draw, ParamsShown) {
  sim::Circuit c(1, 1);
  c.rz(0.25, 0);
  c.measure(0, 0);
  const std::string art = sim::draw(c);
  EXPECT_NE(art.find("RZ(0.25)"), std::string::npos);
}

TEST(Draw, BarrierSpansAllWires) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.barrier();
  c.x(1);
  c.measure_all();
  const std::string art = sim::draw(c);
  // Both wires carry a '|' in the barrier column.
  std::istringstream stream(art);
  std::string l0, l1;
  std::getline(stream, l0);
  std::getline(stream, l1);
  bool both = false;
  for (std::size_t i = 0; i < std::min(l0.size(), l1.size()); ++i) {
    if (l0[i] == '|' && l1[i] == '|') both = true;
  }
  EXPECT_TRUE(both);
}

}  // namespace
}  // namespace qcgen
