// Unit tests for qcgen_common: RNG, statistics, JSON, strings, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace qcgen {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndUnbiased) {
  Rng rng(3);
  std::array<int, 5> histogram{};
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.uniform_int(static_cast<std::uint64_t>(5));
    ASSERT_LT(v, 5u);
    ++histogram[v];
  }
  for (int count : histogram) EXPECT_NEAR(count, 10000, 600);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(static_cast<std::uint64_t>(0)),
               std::invalid_argument);
}

TEST(Rng, SignedRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(static_cast<std::int64_t>(-2),
                                   static_cast<std::int64_t>(2));
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, SignedFullRangeDoesNotThrow) {
  // Regression: [INT64_MIN, INT64_MAX] has span 2^64, whose uint64
  // representation wraps to 0 — the bounded path used to reject it as an
  // empty range. The full range is exactly the raw generator output.
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()));
  }
  EXPECT_GT(seen.size(), 60u);  // 64 draws over 2^64 values: no repeats
  Rng a(99), b(99);
  EXPECT_EQ(a.uniform_int(std::numeric_limits<std::int64_t>::min(),
                          std::numeric_limits<std::int64_t>::max()),
            b.uniform_int(std::numeric_limits<std::int64_t>::min(),
                          std::numeric_limits<std::int64_t>::max()));
}

TEST(Rng, SignedDegenerateRangesAtExtremes) {
  Rng rng(21);
  const auto lo = std::numeric_limits<std::int64_t>::min();
  const auto hi = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(rng.uniform_int(lo, lo), lo);
  EXPECT_EQ(rng.uniform_int(hi, hi), hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> histogram{};
  for (int i = 0; i < 40000; ++i) ++histogram[rng.discrete(weights)];
  EXPECT_EQ(histogram[1], 0);
  EXPECT_NEAR(histogram[0], 10000, 500);
  EXPECT_NEAR(histogram[2], 30000, 500);
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(rng.discrete(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.discrete(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(42);
  Rng child = parent.split();
  Rng parent2(42);
  Rng child2 = parent2.split();
  // Same construction -> same child stream.
  EXPECT_EQ(child.next(), child2.next());
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), std::invalid_argument);
}

TEST(Fnv1a, StableKnownValue) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stderr_mean({}), 0.0);
}

TEST(Stats, WilsonIntervalContainsPointEstimate) {
  const Interval iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
}

TEST(Stats, WilsonIntervalZeroTrials) {
  const Interval iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(Stats, WilsonShrinksWithSamples) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Stats, TvdIdenticalIsZero) {
  Counts a{{"00", 512}, {"11", 512}};
  EXPECT_DOUBLE_EQ(total_variation_distance(a, a), 0.0);
}

TEST(Stats, TvdDisjointIsOne) {
  Counts a{{"00", 100}};
  Counts b{{"11", 100}};
  EXPECT_DOUBLE_EQ(total_variation_distance(a, b), 1.0);
}

TEST(Stats, TvdScaleInvariant) {
  Counts a{{"0", 10}, {"1", 30}};
  Counts b{{"0", 100}, {"1", 300}};
  EXPECT_NEAR(total_variation_distance(a, b), 0.0, 1e-12);
}

TEST(Stats, TvdProbabilityMaps) {
  std::map<std::string, double> a{{"0", 0.5}, {"1", 0.5}};
  std::map<std::string, double> b{{"0", 0.75}, {"1", 0.25}};
  EXPECT_NEAR(total_variation_distance(a, b), 0.25, 1e-12);
}

TEST(Stats, FidelityBounds) {
  Counts a{{"00", 1}};
  Counts b{{"00", 1}};
  EXPECT_NEAR(classical_fidelity(a, b), 1.0, 1e-12);
  Counts c{{"11", 1}};
  EXPECT_NEAR(classical_fidelity(a, c), 0.0, 1e-12);
}

TEST(Stats, HellingerBetweenZeroAndOne) {
  Counts a{{"0", 3}, {"1", 1}};
  Counts b{{"0", 1}, {"1", 3}};
  const double h = hellinger_distance(a, b);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
}

TEST(Stats, SortedByCountOrdering) {
  Counts counts{{"a", 5}, {"b", 10}, {"c", 5}};
  const auto sorted = sorted_by_count(counts);
  EXPECT_EQ(sorted[0].first, "b");
  EXPECT_EQ(sorted[1].first, "a");  // tie broken lexicographically
  EXPECT_EQ(sorted[2].first, "c");
}

TEST(Stats, OutcomeProbability) {
  Counts counts{{"00", 25}, {"11", 75}};
  EXPECT_NEAR(outcome_probability(counts, "11"), 0.75, 1e-12);
  EXPECT_EQ(outcome_probability(counts, "01"), 0.0);
}

TEST(Json, ScalarsAndEscapes) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(Json, NestedStructure) {
  Json root;
  root["name"] = "qcgen";
  root["values"].push_back(1);
  root["values"].push_back(2.5);
  const std::string s = root.dump();
  EXPECT_NE(s.find("\"name\":\"qcgen\""), std::string::npos);
  EXPECT_NE(s.find("[1,2.5]"), std::string::npos);
}

TEST(Json, PrettyPrintIndents) {
  Json root;
  root["k"] = 1;
  const std::string s = root.dump(2);
  EXPECT_NE(s.find("\n  \"k\": 1\n"), std::string::npos);
}

TEST(Json, Uint64RoundTripsExactly) {
  // Regression: seeds used to be coerced to double, silently rounding
  // anything >= 2^53. 0xDEADBEEFDEADBEEF needs all 64 bits.
  const std::uint64_t seed = 0xDEADBEEFDEADBEEFULL;
  EXPECT_EQ(Json(seed).dump(), "16045690984833335023");
  Json report;
  report["seed"] = seed;
  EXPECT_EQ(report.dump(), "{\"seed\":16045690984833335023}");
}

TEST(Json, Int64AboveDoubleMantissaIsExact) {
  // 2^53 + 1 is the first integer a double cannot represent.
  EXPECT_EQ(Json(static_cast<std::int64_t>(9007199254740993)).dump(),
            "9007199254740993");
  EXPECT_EQ(Json(static_cast<std::int64_t>(-9007199254740993)).dump(),
            "-9007199254740993");
  EXPECT_EQ(Json(std::numeric_limits<std::int64_t>::min()).dump(),
            "-9223372036854775808");
}

TEST(Json, NonFiniteSerializesAsNull) {
  // NaN/Infinity are not valid JSON; %.10g used to print them verbatim
  // and produce unparseable artifacts.
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
  Json arr;
  arr.push_back(1.5);
  arr.push_back(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(arr.dump(), "[1.5,null]");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  const auto parts = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

TEST(Strings, PrefixSuffixContains) {
  EXPECT_TRUE(starts_with("qiskit.circuit", "qiskit"));
  EXPECT_TRUE(ends_with("main.cpp", ".cpp"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
  EXPECT_FALSE(contains("abc", "abd"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Table, RendersAlignedRows) {
  Table t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a      | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(Table, MarkdownOutput) {
  Table t({"h1", "h2"});
  t.add_row({"x", "y"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(BarChart, ScalesToWidth) {
  const std::string chart =
      bar_chart({{"full", 10.0}, {"half", 5.0}}, 10.0, 10);
  EXPECT_NE(chart.find("##########"), std::string::npos);
  EXPECT_NE(chart.find("#####     "), std::string::npos);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "broken invariant");
    FAIL() << "require did not throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

}  // namespace
}  // namespace qcgen
