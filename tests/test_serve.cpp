// Serving-layer tests: request seeding, virtual-time admission control,
// workload generation, and the Server determinism contract — per-request
// results (program text, diagnostics, QEC plan) are bit-identical at any
// worker thread count and any enqueue order.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eval/parallel.hpp"
#include "eval/suite.hpp"
#include "qasm/diagnostics.hpp"
#include "serve/admission.hpp"
#include "serve/report.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"

using namespace qcgen;

namespace {

/// Flattens every deterministic field of a result into one comparable
/// string. `include_virtual` adds the admission-model figures, which
/// depend on offer order (exclude them when comparing shuffled-order
/// submissions of the same request set).
std::string fingerprint(const serve::RequestResult& result,
                        bool include_virtual = true) {
  std::string out(serve::request_outcome_name(result.outcome));
  out += '|';
  out += serve::admission_level_name(result.level);
  out += '|';
  out += result.case_id;
  out += '|' + result.failure_stage + '|' + result.failure_site;
  if (include_virtual) {
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, "|%.9f,%.9f,%.9f",
                  result.virtual_start, result.virtual_finish,
                  result.virtual_latency);
    out += buffer;
  }
  if (result.outcome == serve::RequestOutcome::kCompleted) {
    out += '|' + result.pipeline.generation.source;
    out += '|' + std::to_string(result.pipeline.passes_used);
    out += result.pipeline.semantic_ok ? "|sem" : "|nosem";
    for (const auto& pass : result.pipeline.trace) {
      out += '|' + qasm::diagnostics_to_json(pass.diagnostics).dump(0);
    }
    if (result.pipeline.qec.has_value()) {
      char buffer[128];
      std::snprintf(buffer, sizeof buffer, "|qec:%d,%d,%d,%.12g",
                    result.pipeline.qec->feasible ? 1 : 0,
                    result.pipeline.qec->distance,
                    static_cast<int>(result.pipeline.qec->decoder),
                    result.pipeline.qec->lifetime.logical_error_per_round);
      out += buffer;
    }
  }
  return out;
}

/// Small catalog: the first three gold cases.
std::vector<eval::TestCase> small_catalog() {
  const auto full = eval::semantic_suite();
  return {full.begin(), full.begin() + 3};
}

serve::Server::Options server_options(std::size_t threads,
                                      serve::AdmissionOptions admission) {
  serve::Server::Options options;
  options.technique =
      agents::TechniqueConfig::with_rag(llm::ModelProfile::kStarCoder3B);
  options.technique.max_passes = 2;
  agents::QecDecoderAgent::Options qec;
  qec.trials = 100;
  options.qec = qec;
  options.device = agents::DeviceTopology::grid(5, 5);
  options.admission = admission;
  options.threads = threads;
  options.seed = 99;
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// request_seed

TEST(RequestSeed, StableAndCollisionFree) {
  EXPECT_EQ(serve::request_seed(1, 2), serve::request_seed(1, 2));
  EXPECT_NE(serve::request_seed(1, 2), serve::request_seed(1, 3));
  EXPECT_NE(serve::request_seed(1, 2), serve::request_seed(2, 2));

  // Request streams must be disjoint from each other AND from the batch
  // scheduler's trial streams for the same experiment seed.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 64; ++id) {
    seeds.insert(serve::request_seed(2025, id));
    seeds.insert(eval::trial_seed(2025, id, 0));
    seeds.insert(eval::trial_seed(2025, 0, id));
  }
  EXPECT_EQ(seeds.size(), 64u * 3 - 1);  // trial_seed(2025,0,0) counted twice
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(Admission, WalksTheLadderAsBacklogGrows) {
  serve::AdmissionOptions options;
  options.virtual_servers = 1;
  options.full_cost = 1.0;
  options.no_rag_cost = 1.0;
  options.static_only_cost = 1.0;
  options.no_rag_depth = 2;
  options.static_only_depth = 4;
  options.shed_depth = 6;
  serve::AdmissionController admission(options);

  // Eight simultaneous arrivals on one unit-cost server: depth grows by
  // one per admission, crossing every threshold.
  std::vector<serve::AdmissionLevel> levels;
  for (std::uint64_t id = 0; id < 8; ++id) {
    levels.push_back(admission.offer(id, 0.0).level);
  }
  const std::vector<serve::AdmissionLevel> expected = {
      serve::AdmissionLevel::kFull,       serve::AdmissionLevel::kFull,
      serve::AdmissionLevel::kNoRag,      serve::AdmissionLevel::kNoRag,
      serve::AdmissionLevel::kStaticOnly, serve::AdmissionLevel::kStaticOnly,
      serve::AdmissionLevel::kShed,       serve::AdmissionLevel::kShed};
  EXPECT_EQ(levels, expected);
  EXPECT_EQ(admission.offered(), 8u);
  EXPECT_EQ(admission.shed(), 2u);
  EXPECT_EQ(admission.admitted_at(serve::AdmissionLevel::kFull), 2u);
  EXPECT_EQ(admission.admitted_at(serve::AdmissionLevel::kNoRag), 2u);
  EXPECT_EQ(admission.admitted_at(serve::AdmissionLevel::kStaticOnly), 2u);

  // kNoRag records one pre-walked rung, kStaticOnly records two.
  EXPECT_EQ(admission.degradations().size(), 2u * 1 + 2u * 2);
  ASSERT_EQ(admission.shed_events().size(), 2u);
  EXPECT_EQ(admission.shed_events()[0].request_id, 6u);
  EXPECT_EQ(admission.shed_events()[1].depth, 6u);
}

TEST(Admission, BooksFcfsOntoModelServers) {
  serve::AdmissionOptions options = serve::AdmissionOptions::unlimited();
  options.virtual_servers = 2;
  options.full_cost = 1.0;
  serve::AdmissionController admission(options);

  const auto first = admission.offer(0, 0.0);
  const auto second = admission.offer(1, 0.0);
  const auto third = admission.offer(2, 0.0);
  EXPECT_DOUBLE_EQ(first.virtual_start, 0.0);
  EXPECT_DOUBLE_EQ(first.virtual_finish, 1.0);
  EXPECT_DOUBLE_EQ(second.virtual_start, 0.0);
  // Both servers busy: the third waits for the earliest free instant.
  EXPECT_DOUBLE_EQ(third.virtual_start, 1.0);
  EXPECT_DOUBLE_EQ(third.virtual_finish, 2.0);
  EXPECT_EQ(third.depth, 2u);
}

TEST(Admission, BacklogDrainsWhenArrivalsPause) {
  serve::AdmissionOptions options;
  options.virtual_servers = 1;
  options.no_rag_depth = 1;
  options.static_only_depth = 2;
  options.shed_depth = 3;
  serve::AdmissionController admission(options);

  EXPECT_EQ(admission.offer(0, 0.0).level, serve::AdmissionLevel::kFull);
  EXPECT_EQ(admission.offer(1, 0.0).level, serve::AdmissionLevel::kNoRag);
  // A long quiet gap retires the virtual backlog: admission recovers to
  // kFull without any explicit completion signal.
  EXPECT_EQ(admission.offer(2, 10.0).level, serve::AdmissionLevel::kFull);
  EXPECT_EQ(admission.offer(2, 10.0).depth, 1u);
}

TEST(Admission, RejectsInvalidOptions) {
  serve::AdmissionOptions options;
  options.no_rag_depth = 8;
  options.static_only_depth = 4;  // below no_rag_depth
  EXPECT_THROW(serve::AdmissionController{options}, QcgenError);
  serve::AdmissionOptions zero_servers;
  zero_servers.virtual_servers = 0;
  EXPECT_THROW(serve::AdmissionController{zero_servers}, QcgenError);
}

// ---------------------------------------------------------------------------
// Workload generators

TEST(Workload, DeterministicSortedAndInRange) {
  for (const auto process :
       {serve::ArrivalProcess::kPoisson, serve::ArrivalProcess::kBursty,
        serve::ArrivalProcess::kDiurnal}) {
    serve::WorkloadOptions options;
    options.process = process;
    options.count = 80;
    options.rate = 5.0;
    options.seed = 17;
    const auto a = serve::generate_arrivals(options, 7);
    const auto b = serve::generate_arrivals(options, 7);
    EXPECT_EQ(a, b) << arrival_process_name(process);
    ASSERT_EQ(a.size(), 80u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].request_id, i);
      EXPECT_LT(a[i].case_idx, 7u);
      EXPECT_GE(a[i].vt, 0.0);
      if (i > 0) {
        EXPECT_GE(a[i].vt, a[i - 1].vt);
      }
    }
  }
}

TEST(Workload, ZipfMixSkewsTowardLowIndices) {
  serve::WorkloadOptions options;
  options.count = 300;
  options.seed = 17;
  options.mix = serve::CaseMix::kZipf;
  const auto arrivals = serve::generate_arrivals(options, 6);
  std::vector<std::size_t> counts(6, 0);
  for (const auto& arrival : arrivals) ++counts[arrival.case_idx];
  EXPECT_GT(counts[0], counts[5]);
}

TEST(Workload, RejectsInvalidOptions) {
  const auto expect_rejected = [](auto mutate, const char* what) {
    serve::WorkloadOptions options;
    mutate(options);
    EXPECT_THROW((void)serve::generate_arrivals(options, 4),
                 InvalidArgumentError)
        << what;
  };
  expect_rejected([](auto& o) { o.count = 0; }, "count = 0");
  expect_rejected([](auto& o) { o.rate = 0.0; }, "rate = 0");
  expect_rejected([](auto& o) { o.rate = -1.0; }, "rate < 0");
  expect_rejected([](auto& o) { o.zipf_exponent = 0.0; }, "zipf_exponent = 0");
  expect_rejected([](auto& o) { o.zipf_exponent = -0.5; },
                  "zipf_exponent < 0");
  expect_rejected([](auto& o) { o.burst_factor = 0.5; }, "burst_factor < 1");
  expect_rejected([](auto& o) { o.burst_phase_mean = 0.0; },
                  "burst_phase_mean = 0");
  expect_rejected([](auto& o) { o.diurnal_period = 0.0; },
                  "diurnal_period = 0");
  expect_rejected([](auto& o) { o.diurnal_amplitude = 1.0; },
                  "diurnal_amplitude = 1");
  expect_rejected([](auto& o) { o.diurnal_amplitude = -0.1; },
                  "diurnal_amplitude < 0");
  EXPECT_THROW((void)serve::generate_arrivals({}, 0), InvalidArgumentError);
  // Validation is unconditional: a bad parameter for one process is
  // rejected even when another process is selected, so a bench flag typo
  // can never silently ride along.
  expect_rejected(
      [](auto& o) {
        o.process = serve::ArrivalProcess::kPoisson;
        o.burst_phase_mean = -2.0;
      },
      "bursty parameter under poisson");
}

// ---------------------------------------------------------------------------
// Server

TEST(Server, ResultsAreThreadCountInvariant) {
  const auto catalog = small_catalog();
  serve::AdmissionOptions admission;
  admission.virtual_servers = 1;
  admission.no_rag_depth = 2;
  admission.static_only_depth = 4;
  admission.shed_depth = 6;

  // Bunched arrivals so the ladder is exercised: the run mixes kFull,
  // kNoRag, kStaticOnly and kShed results.
  auto run = [&](std::size_t threads) {
    serve::Server server(server_options(threads, admission), catalog);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 12; ++id) {
      serve::Request request;
      request.id = id;
      request.test_case = catalog[id % catalog.size()];
      request.arrival_vt = 0.05 * static_cast<double>(id);
      futures.push_back(server.submit(std::move(request)));
    }
    server.drain();
    std::vector<std::string> prints;
    for (auto& future : futures) prints.push_back(fingerprint(future.get()));
    return prints;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
  }
  // The constrained run really did mix admission levels.
  const auto any_with = [&](const char* label) {
    return std::any_of(serial.begin(), serial.end(),
                       [&](const std::string& print) {
                         return print.find(label) != std::string::npos;
                       });
  };
  EXPECT_TRUE(any_with("|full|"));
  EXPECT_TRUE(any_with("|static-only|"));
  EXPECT_TRUE(any_with("shed"));
}

TEST(Server, ResultsAreSubmissionOrderInvariant) {
  const auto catalog = small_catalog();
  // Unlimited admission: every request is admitted at kFull no matter
  // when it arrives, isolating the per-request seeding contract.
  const auto options =
      server_options(/*threads=*/2, serve::AdmissionOptions::unlimited());

  auto run = [&](const std::vector<std::uint64_t>& order) {
    serve::Server server(options, catalog);
    serve::Session session(server, /*session_id=*/1);
    std::vector<std::pair<std::uint64_t, std::future<serve::RequestResult>>>
        futures;
    for (const std::uint64_t id : order) {
      futures.emplace_back(
          id, session.submit(id, catalog[id % catalog.size()], 0.0));
    }
    server.drain();
    std::vector<std::pair<std::uint64_t, std::string>> prints;
    for (auto& [id, future] : futures) {
      prints.emplace_back(id,
                          fingerprint(future.get(), /*include_virtual=*/false));
    }
    std::sort(prints.begin(), prints.end());
    return prints;
  };

  const std::vector<std::uint64_t> forward = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint64_t> shuffled = {5, 2, 7, 0, 3, 6, 1, 4};
  const auto a = run(forward);
  const auto b = run(shuffled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second) << "request " << a[i].first;
  }
}

TEST(Server, ShedRequestsResolveImmediately) {
  const auto catalog = small_catalog();
  serve::AdmissionOptions admission;
  admission.no_rag_depth = 0;
  admission.static_only_depth = 0;
  admission.shed_depth = 0;  // shed everything
  serve::Server server(server_options(1, admission), catalog);

  serve::Request request;
  request.id = 42;
  request.test_case = catalog[0];
  auto future = server.submit(std::move(request));
  // No worker involvement: the future is ready before drain().
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto result = future.get();
  EXPECT_EQ(result.outcome, serve::RequestOutcome::kShed);
  EXPECT_EQ(result.level, serve::AdmissionLevel::kShed);
  EXPECT_EQ(result.id, 42u);
  server.drain();
  EXPECT_EQ(server.stats().submitted, 1u);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(Server, UncatalogedCasesRunStaticOnlyVerification) {
  const auto full = eval::semantic_suite();
  const auto catalog = small_catalog();
  serve::Server server(
      server_options(1, serve::AdmissionOptions::unlimited()), catalog);
  serve::Request request;
  request.id = 0;
  request.test_case = full[5];  // outside the prewarmed catalog
  auto future = server.submit(std::move(request));
  server.drain();
  const auto result = future.get();
  EXPECT_EQ(result.outcome, serve::RequestOutcome::kCompleted)
      << result.failure_stage << " / " << result.failure_site << " / "
      << result.failure_what;
  // Static-only: without a reference distribution the behavioural
  // verdict cannot be earned, only the syntactic one.
  EXPECT_EQ(result.level, serve::AdmissionLevel::kFull);
}

TEST(Server, ChaosFailuresAreContainedAsStructuredOutcomes) {
  const auto catalog = small_catalog();
  auto options = server_options(2, serve::AdmissionOptions::unlimited());
  options.chaos_scenario = "llm.generate=error(1.0)";
  serve::Server server(options, catalog);
  std::vector<std::future<serve::RequestResult>> futures;
  for (std::uint64_t id = 0; id < 6; ++id) {
    serve::Request request;
    request.id = id;
    request.test_case = catalog[id % catalog.size()];
    futures.push_back(server.submit(std::move(request)));
  }
  server.drain();
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_EQ(result.outcome, serve::RequestOutcome::kFailed);
    EXPECT_FALSE(result.failure_stage.empty());
    EXPECT_FALSE(result.failure_what.empty());
  }
  EXPECT_EQ(server.stats().failed, 6u);
  EXPECT_EQ(server.stats().completed, 0u);
}

// ---------------------------------------------------------------------------
// Cross-request caching

TEST(ServerCache, CachedResultsAreByteIdenticalToBypass) {
  const auto catalog = small_catalog();
  // Repeated cases so the caches actually earn hits; unlimited admission
  // so every request runs the full pipeline.
  auto run = [&](bool bypass) {
    auto options = server_options(2, serve::AdmissionOptions::unlimited());
    options.cache.enabled = true;
    options.cache.bypass = bypass;
    serve::Server server(options, catalog);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 9; ++id) {
      serve::Request request;
      request.id = id;
      request.test_case = catalog[id % catalog.size()];
      request.arrival_vt = 0.1 * static_cast<double>(id);
      futures.push_back(server.submit(std::move(request)));
    }
    server.drain();
    std::vector<std::string> prints;
    for (auto& future : futures) prints.push_back(fingerprint(future.get()));
    if (!bypass) {
      // The memoized run really did serve hits.
      std::uint64_t hits = 0;
      for (const auto& report : server.cache_reports()) {
        hits += report.stats.hits;
      }
      EXPECT_GT(hits, 0u);
    } else {
      EXPECT_TRUE(server.cache_reports().empty());
    }
    return prints;
  };
  // Hit-equals-miss certification: the memoized run must be byte-
  // identical to the same content-addressed computes with no cache.
  const auto cached = run(false);
  const auto uncached = run(true);
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i], uncached[i]) << "request " << i;
  }
}

TEST(ServerCache, CountersAndTracesAreThreadCountInvariant) {
  const auto catalog = small_catalog();
  auto run = [&](std::size_t threads) {
    auto options = server_options(threads, serve::AdmissionOptions::unlimited());
    options.cache.enabled = true;
    options.cache.record_trace = true;
    serve::Server server(options, catalog);
    serve::Session session(server, /*session_id=*/3);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 10; ++id) {
      futures.push_back(
          session.submit(id, catalog[id % catalog.size()],
                         0.05 * static_cast<double>(id)));
    }
    server.drain();
    for (auto& future : futures) future.get();
    return server.cache_reports();
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].layer, parallel[i].layer);
    // Live caches are unbounded, so hit/miss totals are a pure function
    // of the unique key set — identical at any worker interleaving.
    EXPECT_EQ(serial[i].stats, parallel[i].stats) << serial[i].layer;
    // And the (request-tag, sequence)-sorted trace is canonical.
    EXPECT_EQ(serial[i].trace, parallel[i].trace) << serial[i].layer;
    EXPECT_EQ(serial[i].stats.lookups, serial[i].trace.size());
    EXPECT_EQ(serial[i].stats.evictions, 0u);
  }
}

TEST(ServerCache, ChaosAndCachingAreMutuallyExclusive) {
  const auto catalog = small_catalog();
  auto options = server_options(1, serve::AdmissionOptions::unlimited());
  options.chaos_scenario = "llm.generate=error(1.0)";
  options.cache.enabled = true;
  EXPECT_THROW(serve::Server(options, catalog), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Session

TEST(Session, AutoIdsEmbedTheSessionId) {
  const auto catalog = small_catalog();
  serve::Server server(
      server_options(2, serve::AdmissionOptions::unlimited()), catalog);
  serve::Session first(server, 1);
  serve::Session second(server, 2);
  auto a0 = first.submit(catalog[0], 0.0);
  auto a1 = first.submit(catalog[1], 0.0);
  auto b0 = second.submit(catalog[2], 0.0);
  server.drain();
  EXPECT_EQ(a0.get().id, (std::uint64_t{1} << 40) | 0);
  EXPECT_EQ(a1.get().id, (std::uint64_t{1} << 40) | 1);
  EXPECT_EQ(b0.get().id, (std::uint64_t{2} << 40) | 0);
}

TEST(Session, AutoIdExhaustionFailsLoudly) {
  const auto catalog = small_catalog();
  serve::Server server(
      server_options(1, serve::AdmissionOptions::unlimited()), catalog);
  // Pre-seed the counter one below the 2^40 boundary: the last id in the
  // session's span is handed out, the next submit throws instead of
  // wrapping into session 2's id space.
  serve::Session session(server, /*session_id=*/1, {},
                         serve::Session::kAutoIdSpan - 1);
  auto last = session.submit(catalog[0], 0.0);
  EXPECT_THROW(session.submit(catalog[1], 0.0), QcgenError);
  server.drain();
  EXPECT_EQ(last.get().id,
            (std::uint64_t{1} << 40) | (serve::Session::kAutoIdSpan - 1));
  // Explicit-id submission is unaffected by auto-id exhaustion.
  auto explicit_id = session.submit(7, catalog[2], 0.0);
  server.drain();
  EXPECT_EQ(explicit_id.get().id, 7u);
}

TEST(Session, RejectsFirstAutoIdPastTheSpan) {
  const auto catalog = small_catalog();
  serve::Server server(
      server_options(1, serve::AdmissionOptions::unlimited()), catalog);
  EXPECT_THROW(serve::Session(server, 1, {}, serve::Session::kAutoIdSpan + 1),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Report builders

TEST(Report, QuantilesAreNearestRankAndMonotonic) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(static_cast<double>(i));
  const auto q = serve::LatencyQuantiles::of(std::move(values));
  EXPECT_DOUBLE_EQ(q.p50, 50.0);
  EXPECT_DOUBLE_EQ(q.p90, 90.0);
  EXPECT_DOUBLE_EQ(q.p99, 99.0);
  EXPECT_DOUBLE_EQ(q.p999, 100.0);
  EXPECT_DOUBLE_EQ(q.max, 100.0);
  EXPECT_DOUBLE_EQ(q.mean, 50.5);
  const auto empty = serve::LatencyQuantiles::of({});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(Report, SummaryCountsMatchServerStats) {
  const auto catalog = small_catalog();
  serve::AdmissionOptions admission;
  admission.virtual_servers = 1;
  admission.no_rag_depth = 1;
  admission.static_only_depth = 2;
  admission.shed_depth = 3;
  serve::Server server(server_options(2, admission), catalog);
  std::vector<std::future<serve::RequestResult>> futures;
  for (std::uint64_t id = 0; id < 6; ++id) {
    serve::Request request;
    request.id = id;
    request.test_case = catalog[id % catalog.size()];
    futures.push_back(server.submit(std::move(request)));
  }
  server.drain();
  std::vector<serve::RequestResult> results;
  for (auto& future : futures) results.push_back(future.get());

  const auto summary = serve::ServingSummary::from("test", 1.0, server, results);
  EXPECT_EQ(summary.requests, 6u);
  EXPECT_EQ(summary.shed, summary.shed_events.size());
  EXPECT_EQ(summary.admitted_full + summary.admitted_no_rag +
                summary.admitted_static_only + summary.shed,
            summary.requests);
  EXPECT_EQ(summary.completed + summary.failed,
            summary.requests - summary.shed);
  EXPECT_LE(summary.semantic_ok, summary.completed);
  EXPECT_GE(summary.virtual_latency.max, summary.virtual_latency.p50);
  // Events come out sorted by request id.
  for (std::size_t i = 1; i < summary.degradation_events.size(); ++i) {
    EXPECT_LE(summary.degradation_events[i - 1].request_id,
              summary.degradation_events[i].request_id);
  }
}
