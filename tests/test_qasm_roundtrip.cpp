// Printer/builder tests including the print->parse round-trip property
// over every gold program template.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "llm/templates.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/builder.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "sim/statevector.hpp"

namespace qcgen {
namespace {

using llm::AlgorithmId;
using llm::TaskSpec;

TEST(Printer, SimpleProgramLayout) {
  const qasm::ParseResult parsed = qasm::parse(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; rz(pi/4) q[1]; "
      "measure q[0] -> c[0]; }");
  ASSERT_TRUE(parsed.ok());
  const std::string printed = qasm::print_program(*parsed.program);
  EXPECT_NE(printed.find("import qiskit;"), std::string::npos);
  EXPECT_NE(printed.find("circuit main(q: 2, c: 2) {"), std::string::npos);
  EXPECT_NE(printed.find("  h q[0];"), std::string::npos);
  EXPECT_NE(printed.find("  rz(pi / 4) q[1];"), std::string::npos);
  EXPECT_NE(printed.find("  measure q[0] -> c[0];"), std::string::npos);
}

TEST(Printer, ExpressionPrecedenceParenthesisation) {
  using qasm::Expr;
  // (1 + 2) * pi needs parens; 1 + 2 * pi does not.
  const auto grouped = Expr::make_binary(
      Expr::Kind::kMul,
      Expr::make_binary(Expr::Kind::kAdd, Expr::make_number(1.0),
                        Expr::make_number(2.0)),
      Expr::make_pi());
  EXPECT_EQ(qasm::print_expr(*grouped), "(1 + 2) * pi");
  const auto flat = Expr::make_binary(
      Expr::Kind::kAdd, Expr::make_number(1.0),
      Expr::make_binary(Expr::Kind::kMul, Expr::make_number(2.0),
                        Expr::make_pi()));
  EXPECT_EQ(qasm::print_expr(*flat), "1 + 2 * pi");
}

TEST(Printer, NegationPrinting) {
  using qasm::Expr;
  const auto neg = Expr::make_unary(
      Expr::Kind::kNeg,
      Expr::make_binary(Expr::Kind::kDiv, Expr::make_pi(),
                        Expr::make_number(2.0)));
  const std::string s = qasm::print_expr(*neg);
  // Must re-parse to the same value.
  const auto reparsed = qasm::parse("import qiskit; circuit m(q: 1) { rz(" +
                                    s + ") q[0]; }");
  ASSERT_TRUE(reparsed.ok());
  const auto& g = std::get<qasm::GateStmt>(reparsed.program->circuits[0].body[0]);
  EXPECT_NEAR(g.params[0]->evaluate(), neg->evaluate(), 1e-12);
}

TEST(Printer, IfStatementRendering) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kTeleportation;
  const std::string printed = qasm::print_program(llm::gold_program(task));
  EXPECT_NE(printed.find("if (c[1] == 1)"), std::string::npos);
  EXPECT_NE(printed.find("    x q[2];"), std::string::npos);
}

// Property: print -> parse -> print is a fixed point, and the parsed
// program builds a circuit with identical exact behaviour.
class GoldRoundTrip : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(GoldRoundTrip, PrintParseRoundTrips) {
  TaskSpec task;
  task.algorithm = GetParam();
  const qasm::Program gold = llm::gold_program(task);
  const std::string printed = qasm::print_program(gold);

  const qasm::ParseResult reparsed = qasm::parse(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                             << qasm::format_error_trace(reparsed.diagnostics);
  const std::string printed_again = qasm::print_program(*reparsed.program);
  EXPECT_EQ(printed, printed_again);

  // Analysis-clean.
  const auto report = qasm::analyze(*reparsed.program);
  EXPECT_TRUE(report.ok()) << printed << "\n"
                           << qasm::format_error_trace(report.diagnostics);

  // Behavioural equivalence of direct and round-tripped circuits.
  const sim::Circuit direct = qasm::build_circuit(gold);
  const sim::Circuit rebuilt = qasm::build_circuit(*reparsed.program);
  const auto d1 = sim::exact_distribution(direct);
  const auto d2 = sim::exact_distribution(rebuilt);
  EXPECT_LT(total_variation_distance(d1, d2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, GoldRoundTrip,
    ::testing::ValuesIn(llm::all_algorithms()),
    [](const auto& info) { return std::string(llm::algorithm_name(info.param)); });

TEST(Builder, LowersConditionsAndMeasures) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kTeleportation;
  const sim::Circuit c = qasm::build_circuit(llm::gold_program(task));
  EXPECT_TRUE(c.has_conditions());
  EXPECT_EQ(c.num_qubits(), 3u);
}

TEST(Builder, RejectsProgramWithoutCircuit) {
  qasm::Program empty;
  EXPECT_THROW(qasm::build_circuit(empty), InvalidArgumentError);
}

TEST(Builder, CompileOrThrowOnBadSource) {
  EXPECT_THROW(qasm::compile_or_throw("not a program"), InvalidArgumentError);
  EXPECT_THROW(
      qasm::compile_or_throw(
          "import qiskit; circuit m(q: 1, c: 1) { h q[9]; measure_all; }"),
      InvalidArgumentError);
  const sim::Circuit ok = qasm::compile_or_throw(
      "import qiskit; circuit m(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_EQ(ok.num_qubits(), 1u);
}

TEST(GoldPrograms, BehaviouralSpotChecks) {
  // DJ constant yields all-zeros deterministically.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kDeutschJozsa;
    t.params = {{"n", 3}, {"constant", 1}};
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("000"), 1.0, 1e-9);
  }
  // Bernstein-Vazirani recovers the secret.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kBernsteinVazirani;
    t.params = {{"n", 4}, {"secret", 11}};
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("1011"), 1.0, 1e-9);
  }
  // Shor period finding peaks at multiples of 2 (period 4 of 7 mod 15).
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kShorPeriodFinding;
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("000") + d.at("010") + d.at("100") + d.at("110"), 1.0,
                1e-9);
    EXPECT_NEAR(d.at("010"), 0.25, 1e-9);
  }
  // GHZ parity oracle flips qubit 0 deterministically.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kGhzParityOracle;
    t.params = {{"n", 3}};
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("1"), 1.0, 1e-9);
  }
  // Phase kickback flips the control.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kPhaseKickback;
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("1"), 1.0, 1e-9);
  }
  // Inverse QFT restores the input.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kInverseQft;
    t.params = {{"n", 3}, {"input", 1}};
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_NEAR(d.at("001"), 1.0, 1e-9);
  }
  // Annealing concentrates on the ferromagnetic ground states.
  {
    TaskSpec t;
    t.algorithm = AlgorithmId::kQuantumAnnealing;
    t.params = {{"n", 3}, {"steps", 4}};
    const auto d = sim::exact_distribution(
        qasm::build_circuit(llm::gold_program(t)));
    EXPECT_GT(d.at("000") + d.at("111"), 0.5);
  }
}

TEST(GoldPrograms, ParameterValidation) {
  TaskSpec t;
  t.algorithm = AlgorithmId::kGrover;
  t.params = {{"n", 9}};
  EXPECT_THROW(llm::gold_program(t), InvalidArgumentError);
  t.algorithm = AlgorithmId::kGhz;
  t.params = {{"n", 1}};
  EXPECT_THROW(llm::gold_program(t), InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen
