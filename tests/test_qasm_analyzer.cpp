// Tests for the semantic analyzer and the language registry.

#include <gtest/gtest.h>

#include "qasm/analyzer.hpp"
#include "qasm/parser.hpp"

namespace qcgen::qasm {
namespace {

AnalysisReport analyze_source(const std::string& source,
                              const AnalyzerOptions& options = {}) {
  const ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok()) << format_error_trace(parsed.diagnostics);
  return analyze(*parsed.program, LanguageRegistry::current(), options);
}

bool has_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(Registry, ImportStatusClassification) {
  const auto& reg = LanguageRegistry::current();
  EXPECT_EQ(reg.import_status("qiskit"), ImportStatus::kCurrent);
  EXPECT_EQ(reg.import_status("qiskit.circuit.library"),
            ImportStatus::kCurrent);
  EXPECT_EQ(reg.import_status("qiskit.aqua"), ImportStatus::kDeprecated);
  EXPECT_EQ(reg.import_status("qiskit.execute"), ImportStatus::kDeprecated);
  EXPECT_EQ(reg.import_status("made.up.module"), ImportStatus::kUnknown);
}

TEST(Registry, ReplacementsExistForDeprecatedImports) {
  const auto& reg = LanguageRegistry::current();
  for (const std::string& dep : reg.deprecated_imports()) {
    EXPECT_TRUE(reg.import_replacement(dep).has_value()) << dep;
  }
  EXPECT_FALSE(reg.import_replacement("qiskit").has_value());
}

TEST(Registry, GateKnowledge) {
  const auto& reg = LanguageRegistry::current();
  EXPECT_TRUE(reg.is_known_gate("h"));
  EXPECT_TRUE(reg.is_known_gate("cnot"));  // legacy alias
  EXPECT_TRUE(reg.is_deprecated_gate_alias("cnot"));
  EXPECT_FALSE(reg.is_deprecated_gate_alias("cx"));
  EXPECT_FALSE(reg.is_known_gate("u2"));
}

TEST(Analyzer, CleanProgramPasses) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }");
  EXPECT_TRUE(report.ok()) << format_error_trace(report.diagnostics);
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Analyzer, MissingQiskitImport) {
  const auto report = analyze_source(
      "import qiskit_aer; circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, DiagCode::kMissingQiskitImport));
}

TEST(Analyzer, DeprecatedImportIsErrorByDefault) {
  const auto report = analyze_source(
      "import qiskit; import qiskit.execute; "
      "circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, DiagCode::kDeprecatedImport));
  // Message carries the replacement suggestion for the repair agent.
  bool suggestion = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == DiagCode::kDeprecatedImport &&
        d.message.find("qiskit.primitives") != std::string::npos) {
      suggestion = true;
    }
  }
  EXPECT_TRUE(suggestion);
}

TEST(Analyzer, DeprecatedImportDowngradable) {
  AnalyzerOptions options;
  options.deprecated_import_is_error = false;
  const auto report = analyze_source(
      "import qiskit; import qiskit.aqua; "
      "circuit main(q: 1, c: 1) { h q[0]; measure_all; }",
      options);
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.warning_count(), 1u);
}

TEST(Analyzer, UnknownImport) {
  const auto report = analyze_source(
      "import qiskit; import quantum_tools; "
      "circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kUnknownImport));
}

TEST(Analyzer, UnknownGate) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { hadamard q[0]; measure_all; }");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, DiagCode::kUnknownGate));
}

TEST(Analyzer, DeprecatedAliasWarnsByDefault) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cnot q[0], q[1]; "
      "measure_all; }");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(has_code(report, DiagCode::kDeprecatedGateAlias));
}

TEST(Analyzer, DeprecatedAliasAsError) {
  AnalyzerOptions options;
  options.deprecated_alias_is_error = true;
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cnot q[0], q[1]; "
      "measure_all; }",
      options);
  EXPECT_FALSE(report.ok());
}

TEST(Analyzer, WrongArity) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[0]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kWrongArity));
}

TEST(Analyzer, WrongParamCount) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { rz q[0]; h(0.5) q[0]; "
      "measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kWrongParamCount));
}

TEST(Analyzer, QubitOutOfRange) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[2]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kQubitOutOfRange));
}

TEST(Analyzer, ClbitOutOfRange) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 1) { measure q[0] -> c[1]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kClbitOutOfRange));
}

TEST(Analyzer, DuplicateQubitOperand) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[1], q[1]; "
      "measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDuplicateQubit));
}

TEST(Analyzer, NoMeasurementWarning) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; }");
  EXPECT_TRUE(report.ok());  // warning only
  EXPECT_TRUE(has_code(report, DiagCode::kNoMeasurement));
}

TEST(Analyzer, ConditionOnUnwrittenClbit) {
  // The clbit is written *later*, so the dataflow lint classifies the
  // read as stale (misordered) rather than never-written.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { if (c[0] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kConditionOnStaleClbit));
  // No write anywhere keeps the original never-written code.
  const auto unwritten = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { if (c[1] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(unwritten, DiagCode::kConditionOnUnwrittenClbit));
}

TEST(Analyzer, UnusedQubitWarning) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 3, c: 3) { h q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kUnusedQubit));
  AnalyzerOptions options;
  options.warn_unused_qubits = false;
  const auto quiet = analyze_source(
      "import qiskit; circuit main(q: 3, c: 3) { h q[0]; "
      "measure q[0] -> c[0]; }",
      options);
  EXPECT_FALSE(has_code(quiet, DiagCode::kUnusedQubit));
}

TEST(Analyzer, EmptyCircuitAndZeroQubits) {
  const auto empty_body =
      analyze_source("import qiskit; circuit main(q: 2, c: 2) { }");
  EXPECT_TRUE(has_code(empty_body, DiagCode::kEmptyCircuit));
  const auto zero = analyze_source("import qiskit; circuit main(q: 0) { h q[0]; }");
  EXPECT_TRUE(has_code(zero, DiagCode::kEmptyCircuit));
}

TEST(Analyzer, DuplicateCircuitNames) {
  const auto report = analyze_source(
      "import qiskit;"
      "circuit m(q: 1, c: 1) { h q[0]; measure_all; }"
      "circuit m(q: 1, c: 1) { x q[0]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDuplicateCircuitName));
}

TEST(Analyzer, NoCircuitAtAll) {
  const ParseResult parsed = parse("import qiskit;");
  ASSERT_TRUE(parsed.ok());
  const auto report = analyze(*parsed.program);
  EXPECT_TRUE(has_code(report, DiagCode::kNoCircuit));
}

TEST(Analyzer, OnlySyntacticErrorsClassification) {
  const auto syntactic = analyze_source(
      "import qiskit; import qiskit.aqua; "
      "circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_TRUE(syntactic.only_syntactic_errors());
  const auto semantic = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[5]; measure_all; }");
  EXPECT_FALSE(semantic.only_syntactic_errors());
}

}  // namespace
}  // namespace qcgen::qasm
