// Tests for the QasmLite parser.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "qasm/parser.hpp"

namespace qcgen::qasm {
namespace {

constexpr const char* kValidProgram = R"(
import qiskit;
import qiskit.circuit;

circuit main(q: 2, c: 2) {
  h q[0];
  cx q[0], q[1];
  rz(pi/4) q[1];
  barrier;
  measure q[0] -> c[0];
  measure q[1] -> c[1];
}
)";

TEST(Parser, AcceptsValidProgram) {
  const ParseResult r = parse(kValidProgram);
  ASSERT_TRUE(r.ok()) << format_error_trace(r.diagnostics);
  EXPECT_EQ(r.program->imports.size(), 2u);
  EXPECT_EQ(r.program->imports[1].path, "qiskit.circuit");
  ASSERT_EQ(r.program->circuits.size(), 1u);
  const CircuitDecl& c = r.program->circuits[0];
  EXPECT_EQ(c.name, "main");
  EXPECT_EQ(c.num_qubits, 2u);
  EXPECT_EQ(c.num_clbits, 2u);
  EXPECT_EQ(c.body.size(), 6u);
}

TEST(Parser, DottedImportPathsWithKeywords) {
  // "circuit" and "measure" are keywords but valid as path components.
  const ParseResult r =
      parse("import qiskit.circuit.measure; circuit m(q: 1) { h q[0]; }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program->imports[0].path, "qiskit.circuit.measure");
}

TEST(Parser, GateParametersEvaluate) {
  const ParseResult r = parse(
      "import qiskit; circuit m(q: 1) { rz(pi/2) q[0]; ry(-pi) q[0]; "
      "u(2*pi, 0.5, 1 + 2 * 3) q[0]; }");
  ASSERT_TRUE(r.ok()) << format_error_trace(r.diagnostics);
  const auto& body = r.program->circuits[0].body;
  const auto& rz = std::get<GateStmt>(body[0]);
  EXPECT_NEAR(rz.params[0]->evaluate(), std::numbers::pi / 2, 1e-12);
  const auto& ry = std::get<GateStmt>(body[1]);
  EXPECT_NEAR(ry.params[0]->evaluate(), -std::numbers::pi, 1e-12);
  const auto& u = std::get<GateStmt>(body[2]);
  EXPECT_NEAR(u.params[0]->evaluate(), 2 * std::numbers::pi, 1e-12);
  EXPECT_NEAR(u.params[2]->evaluate(), 7.0, 1e-12);
}

TEST(Parser, ParenthesisedExpressions) {
  const ParseResult r =
      parse("import qiskit; circuit m(q: 1) { rz((1 + 2) * 3) q[0]; }");
  ASSERT_TRUE(r.ok());
  const auto& g = std::get<GateStmt>(r.program->circuits[0].body[0]);
  EXPECT_NEAR(g.params[0]->evaluate(), 9.0, 1e-12);
}

TEST(Parser, MeasureStatement) {
  const ParseResult r =
      parse("import qiskit; circuit m(q: 2, c: 2) { measure q[1] -> c[0]; }");
  ASSERT_TRUE(r.ok());
  const auto& m = std::get<MeasureStmt>(r.program->circuits[0].body[0]);
  EXPECT_EQ(m.qubit.index, 1u);
  EXPECT_EQ(m.clbit.index, 0u);
}

TEST(Parser, IfStatement) {
  const ParseResult r = parse(
      "import qiskit; circuit m(q: 2, c: 2) { measure q[0] -> c[0]; "
      "if (c[0] == 1) x q[1]; }");
  ASSERT_TRUE(r.ok());
  const auto& node =
      std::get<std::shared_ptr<IfStmt>>(r.program->circuits[0].body[1]);
  EXPECT_EQ(node->clbit.index, 0u);
  EXPECT_TRUE(node->value);
  EXPECT_EQ(std::get<GateStmt>(node->body).name, "x");
}

TEST(Parser, IfConditionMustBeBit) {
  const ParseResult r = parse(
      "import qiskit; circuit m(q: 1, c: 1) { if (c[0] == 2) x q[0]; }");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, MeasureAllAndReset) {
  const ParseResult r = parse(
      "import qiskit; circuit m(q: 2, c: 2) { reset q[0]; measure_all; }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::holds_alternative<ResetStmt>(r.program->circuits[0].body[0]));
  EXPECT_TRUE(
      std::holds_alternative<MeasureAllStmt>(r.program->circuits[0].body[1]));
}

TEST(Parser, MissingSemicolonIsError) {
  const ParseResult r = parse("import qiskit; circuit m(q: 1) { h q[0] }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_errors(r.diagnostics));
}

TEST(Parser, MissingBraceIsError) {
  const ParseResult r = parse("import qiskit; circuit m(q: 1) { h q[0];");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, StrayTopLevelTokensDoNotLoop) {
  // Regression: stray '}' at top level must terminate with diagnostics,
  // not accumulate errors forever.
  const ParseResult r = parse("} } } import qiskit;");
  EXPECT_FALSE(r.ok());
  EXPECT_LT(r.diagnostics.size(), 10u);
}

TEST(Parser, GarbageInput) {
  const ParseResult r = parse("@@@ %%% &&&");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, MultipleCircuitsAndEntrySelection) {
  const ParseResult r = parse(
      "import qiskit;"
      "circuit helper(q: 1) { x q[0]; }"
      "circuit main(q: 2, c: 2) { h q[0]; measure_all; }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program->circuits.size(), 2u);
  EXPECT_EQ(r.program->entry()->name, "main");
}

TEST(Parser, EntryFallsBackToFirstCircuit) {
  const ParseResult r =
      parse("import qiskit; circuit bell(q: 2, c: 2) { h q[0]; }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program->entry()->name, "bell");
}

TEST(Parser, EmptyProgramHasNoEntry) {
  Program empty;
  EXPECT_EQ(empty.entry(), nullptr);
}

TEST(Parser, RegisterNamesArePreserved) {
  const ParseResult r =
      parse("import qiskit; circuit m(qubits: 2, bits: 2) { h qubits[0]; }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program->circuits[0].qreg_name, "qubits");
  EXPECT_EQ(r.program->circuits[0].creg_name, "bits");
}

TEST(Parser, DiagnosticsCarryLocation) {
  const ParseResult r = parse("import qiskit;\ncircuit m(q: 1) {\n  h q[; \n}");
  ASSERT_FALSE(r.ok());
  bool found_line3 = false;
  for (const auto& d : r.diagnostics) {
    if (d.line == 3) found_line3 = true;
  }
  EXPECT_TRUE(found_line3);
}

TEST(Expr, EvaluateAllKinds) {
  const ExprPtr e = Expr::make_binary(
      Expr::Kind::kSub,
      Expr::make_binary(Expr::Kind::kMul, Expr::make_number(2.0),
                        Expr::make_pi()),
      Expr::make_unary(Expr::Kind::kNeg, Expr::make_number(1.0)));
  EXPECT_NEAR(e->evaluate(), 2 * std::numbers::pi + 1.0, 1e-12);
  const ExprPtr div = Expr::make_binary(Expr::Kind::kDiv, Expr::make_pi(),
                                        Expr::make_number(4.0));
  EXPECT_NEAR(div->evaluate(), std::numbers::pi / 4, 1e-12);
}

TEST(Expr, FactoryValidation) {
  EXPECT_THROW(Expr::make_unary(Expr::Kind::kAdd, Expr::make_pi()),
               qcgen::InvalidArgumentError);
  EXPECT_THROW(
      Expr::make_binary(Expr::Kind::kNeg, Expr::make_pi(), Expr::make_pi()),
      qcgen::InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::qasm
