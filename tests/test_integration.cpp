// End-to-end integration tests across the full stack: generation ->
// analysis -> repair -> judging -> QEC planning -> noisy resimulation.

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "agents/pipeline.hpp"
#include "eval/judge.hpp"
#include "eval/runner.hpp"
#include "qec/logical_error.hpp"
#include "sim/noise.hpp"

namespace qcgen {
namespace {

TEST(Integration, TechniqueOrderingMatchesPaperShape) {
  // The paper's central Fig 3 ordering on a subsample of the suite:
  // base < fine-tuned, and fine-tuned < fine-tuned + SCoT by a wide
  // margin. (Full-suite numbers are produced by bench_fig3_techniques.)
  auto suite = eval::semantic_suite();
  // Subsample every other case to keep the test fast but representative.
  std::vector<eval::TestCase> sampled;
  for (std::size_t i = 0; i < suite.size(); i += 2) sampled.push_back(suite[i]);
  eval::RunnerOptions options;
  options.samples_per_case = 2;

  using agents::TechniqueConfig;
  const auto profile = llm::ModelProfile::kStarCoder3B;
  const auto base =
      eval::evaluate_technique(TechniqueConfig::base(profile), sampled, options);
  const auto ft = eval::evaluate_technique(
      TechniqueConfig::fine_tuned_only(profile), sampled, options);
  const auto scot = eval::evaluate_technique(TechniqueConfig::with_scot(profile),
                                             sampled, options);
  EXPECT_LT(base.semantic_rate, ft.semantic_rate + 0.05);
  EXPECT_GT(scot.semantic_rate, ft.semantic_rate + 0.10);
  EXPECT_GT(scot.semantic_rate, 2.0 * base.semantic_rate * 0.8);
}

TEST(Integration, MultipassImprovesFineTunedModel) {
  auto suite = eval::semantic_suite();
  std::vector<eval::TestCase> sampled;
  for (std::size_t i = 0; i < suite.size(); i += 3) sampled.push_back(suite[i]);
  eval::RunnerOptions options;
  options.samples_per_case = 2;
  const auto profile = llm::ModelProfile::kStarCoder3B;
  const auto single = eval::evaluate_technique(
      agents::TechniqueConfig::with_multipass(profile, 1), sampled, options);
  const auto triple = eval::evaluate_technique(
      agents::TechniqueConfig::with_multipass(profile, 3), sampled, options);
  EXPECT_GE(triple.semantic_rate, single.semantic_rate);
  EXPECT_GT(triple.mean_passes_used, 1.0);
}

TEST(Integration, RepairLoopResolvesSyntacticFailures) {
  // Syntactic accuracy must rise with passes even when semantic accuracy
  // saturates (paper: multi-pass mainly fixes syntax).
  auto suite = eval::semantic_suite();
  suite.resize(30);
  eval::RunnerOptions options;
  options.samples_per_case = 2;
  const auto profile = llm::ModelProfile::kStarCoder3B;
  const auto p1 = eval::evaluate_technique(
      agents::TechniqueConfig::with_multipass(profile, 1), suite, options);
  const auto p4 = eval::evaluate_technique(
      agents::TechniqueConfig::with_multipass(profile, 4), suite, options);
  EXPECT_GT(p4.syntactic_rate, p1.syntactic_rate);
}

TEST(Integration, FullQecFlowReducesEffectiveError) {
  // The Fig 4 flow end-to-end: pipeline with QEC on Brisbane, then noisy
  // and post-QEC resimulation of the produced circuit.
  const agents::DeviceTopology device = agents::DeviceTopology::ibm_brisbane();
  agents::QecDecoderAgent::Options qec_options;
  qec_options.target_distance = 3;
  qec_options.trials = 600;
  agents::MultiAgentPipeline pipeline(
      agents::TechniqueConfig::base(llm::ModelProfile::kGranite20B),
      agents::SemanticAnalyzerAgent::Options(), qec_options, device, 41);

  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kDeutschJozsa;
  task.params = {{"n", 2}, {"constant", 1}};
  const sim::Distribution reference =
      sim::exact_distribution(sim::circuits::deutsch_jozsa(2, true));

  agents::PipelineResult result;
  for (int attempt = 0; attempt < 20; ++attempt) {
    result = pipeline.run(task, reference, 0);
    if (result.semantic_ok) break;
  }
  ASSERT_TRUE(result.semantic_ok);
  ASSERT_TRUE(result.qec.has_value());
  ASSERT_TRUE(result.qec->feasible);
  EXPECT_LE(result.qec->lifetime.suppression_factor, 1.0);

  const Counts noisy = sim::run_noisy(*result.circuit, device.noise(),
                                      sim::NoisyRunOptions{4096, 3});
  const Counts corrected =
      sim::run_noisy(*result.circuit, result.qec->effective_noise,
                     sim::NoisyRunOptions{4096, 4});
  EXPECT_GE(outcome_probability(corrected, "00") + 0.02,
            outcome_probability(noisy, "00"));
}

TEST(Integration, ErrorTraceDrivesRepairOfKnownFault) {
  // Inject a deprecated import into a perfect program, run the pipeline
  // machinery manually and confirm the trace mentions the import and the
  // class resists repair less often than parse errors.
  const agents::SemanticAnalyzerAgent analyzer;
  const auto report = analyzer.analyze(
      "import qiskit; import qiskit.providers.aer; "
      "circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  EXPECT_FALSE(report.syntactic_ok);
  EXPECT_NE(report.error_trace.find("deprecated-import"), std::string::npos);
  EXPECT_NE(report.error_trace.find("qiskit_aer"), std::string::npos);
}

TEST(Integration, QecDecodersProtectAcrossFullStack) {
  // Surface-code Monte Carlo at moderate noise through the factory path
  // used by the QEC agent.
  const qec::SurfaceCode code = qec::SurfaceCode::rotated(3);
  qec::LogicalErrorConfig config;
  config.noise = {0.01, 0.01};
  config.trials = 1200;
  const auto mwpm = qec::estimate_logical_error(code, qec::DecoderKind::kMwpm,
                                                config);
  // Raw 3-round failure probability without correction would be roughly
  // 1 - (1-p)^(9*3) ~ 0.24; the decoder must beat that clearly.
  EXPECT_LT(mwpm.logical_error_rate, 0.12);
}

TEST(Integration, SuiteAccuracyHigherOnBasicTier) {
  auto suite = eval::semantic_suite();
  eval::RunnerOptions options;
  options.samples_per_case = 1;
  const auto report = eval::evaluate_technique(
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B),
      suite, options);
  EXPECT_GT(report.semantic_by_tier.at(llm::Tier::kBasic),
            report.semantic_by_tier.at(llm::Tier::kAdvanced));
}

}  // namespace
}  // namespace qcgen
