// Unit and property tests for the dense state-vector simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qcgen::sim {
namespace {

constexpr double kEps = 1e-10;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kEps);
  for (std::uint64_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kEps);
  }
}

TEST(StateVector, SizeLimits) {
  EXPECT_THROW(StateVector(0), InvalidArgumentError);
  EXPECT_THROW(StateVector(25), InvalidArgumentError);
}

TEST(StateVector, XFlipsBasisState) {
  StateVector sv(2);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 1.0, kEps);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 1);
  EXPECT_NEAR(std::abs(sv.amplitude(3)), 1.0, kEps);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply_1q(gate_matrix_1q(GateKind::kH, {}), 0);
  EXPECT_NEAR(sv.probability_one(0), 0.5, kEps);
  EXPECT_NEAR(sv.norm(), 1.0, kEps);
}

TEST(StateVector, BellStateAmplitudes) {
  StateVector sv(2);
  sv.apply_1q(gate_matrix_1q(GateKind::kH, {}), 0);
  sv.apply_controlled_1q(gate_matrix_1q(GateKind::kX, {}), 0, 1);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), inv_sqrt2, kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(3)), inv_sqrt2, kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, kEps);
}

TEST(StateVector, CcxTruthTable) {
  // CCX flips the target only when both controls are 1.
  for (std::uint64_t input = 0; input < 8; ++input) {
    StateVector sv(3);
    for (std::size_t q = 0; q < 3; ++q) {
      if ((input >> q) & 1ULL) sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), q);
    }
    sv.apply_cc_1q(gate_matrix_1q(GateKind::kX, {}), 0, 1, 2);
    const std::uint64_t expected =
        ((input & 3ULL) == 3ULL) ? (input ^ 4ULL) : input;
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, kEps)
        << "input " << input;
  }
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);  // |01>
  sv.apply_swap(0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, kEps);  // |10>
}

TEST(StateVector, CswapConditionalExchange) {
  StateVector sv(3);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 1);  // |010>
  sv.apply_cswap(0, 1, 2);                           // control 0 is |0>
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, kEps);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);  // |011>
  sv.apply_cswap(0, 1, 2);
  EXPECT_NEAR(std::abs(sv.amplitude(5)), 1.0, kEps);  // |101>
}

TEST(StateVector, RzzPhases) {
  const double theta = 0.7;
  StateVector sv(2);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);  // |01>: anti-aligned
  sv.apply_rzz(theta, 0, 1);
  const Complex expected = std::exp(Complex(0, theta / 2));
  EXPECT_NEAR(std::abs(sv.amplitude(1) - expected), 0.0, kEps);
}

TEST(StateVector, UnitaryPreservesNorm) {
  StateVector sv(4);
  Rng rng(3);
  const GateKind one_q[] = {GateKind::kH, GateKind::kT, GateKind::kSX,
                            GateKind::kRY};
  for (int i = 0; i < 200; ++i) {
    const GateKind kind = one_q[rng.uniform_int(std::uint64_t{4})];
    std::vector<double> params(
        static_cast<std::size_t>(gate_info(kind).num_params),
        rng.uniform(0.0, 6.28));
    sv.apply_1q(gate_matrix_1q(kind, params),
                rng.uniform_int(std::uint64_t{4}));
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-8);
}

TEST(StateVector, MeasureCollapses) {
  StateVector sv(1);
  sv.apply_1q(gate_matrix_1q(GateKind::kH, {}), 0);
  Rng rng(5);
  const bool outcome = sv.measure(0, rng);
  EXPECT_NEAR(sv.probability_one(0), outcome ? 1.0 : 0.0, kEps);
  EXPECT_NEAR(sv.norm(), 1.0, kEps);
}

TEST(StateVector, MeasureDeterministicStates) {
  StateVector sv(1);
  Rng rng(1);
  EXPECT_FALSE(sv.measure(0, rng));
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);
  EXPECT_TRUE(sv.measure(0, rng));
}

TEST(StateVector, ResetToZero) {
  StateVector sv(1);
  sv.apply_1q(gate_matrix_1q(GateKind::kX, {}), 0);
  Rng rng(1);
  sv.reset(0, rng);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kEps);
}

TEST(StateVector, AssignAmplitudesValidatesSize) {
  StateVector sv(2);
  EXPECT_THROW(sv.assign_amplitudes(std::vector<Complex>(3)),
               InvalidArgumentError);
}

TEST(RunIdeal, BellPairCorrelations) {
  const Counts counts = run_ideal(circuits::bell_pair(), RunOptions{4096, 1});
  EXPECT_EQ(outcome_probability(counts, "01") +
                outcome_probability(counts, "10"),
            0.0);
  EXPECT_NEAR(outcome_probability(counts, "00"), 0.5, 0.05);
  EXPECT_NEAR(outcome_probability(counts, "11"), 0.5, 0.05);
}

TEST(RunIdeal, DeterministicGivenSeed) {
  const Counts a = run_ideal(circuits::ghz(3), RunOptions{512, 42});
  const Counts b = run_ideal(circuits::ghz(3), RunOptions{512, 42});
  EXPECT_EQ(a, b);
}

TEST(RunIdeal, DeutschJozsaSeparatesOracles) {
  const Counts constant =
      run_ideal(circuits::deutsch_jozsa(3, true), RunOptions{1024, 2});
  EXPECT_NEAR(outcome_probability(constant, "000"), 1.0, 1e-9);
  const Counts balanced =
      run_ideal(circuits::deutsch_jozsa(3, false), RunOptions{1024, 2});
  EXPECT_NEAR(outcome_probability(balanced, "000"), 0.0, 1e-9);
}

TEST(RunIdeal, GroverAmplifiesMarkedState) {
  const Counts counts = run_ideal(circuits::grover(2, 2, 1), RunOptions{1024, 3});
  // One Grover iteration on 2 qubits finds the marked state exactly.
  EXPECT_NEAR(outcome_probability(counts, "10"), 1.0, 1e-9);
}

TEST(RunIdeal, BernsteinVaziraniRecoversSecret) {
  const Counts counts =
      run_ideal(circuits::bernstein_vazirani(0b110, 3), RunOptions{256, 4});
  EXPECT_NEAR(outcome_probability(counts, "110"), 1.0, 1e-9);
}

TEST(RunIdeal, TeleportationPreservesPayload) {
  const double theta = 1.234;
  const Counts counts =
      run_ideal(circuits::teleportation(theta), RunOptions{20000, 5});
  // Marginal of the output qubit (leftmost character: clbit 2).
  double p1 = 0.0;
  double total = 0.0;
  for (const auto& [key, count] : counts) {
    total += static_cast<double>(count);
    if (key[0] == '1') p1 += static_cast<double>(count);
  }
  p1 /= total;
  const double expected = std::sin(theta / 2) * std::sin(theta / 2);
  EXPECT_NEAR(p1, expected, 0.02);
}

TEST(ExactDistribution, MatchesSampledGhz) {
  const Distribution exact = exact_distribution(circuits::ghz(3));
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_NEAR(exact.at("000"), 0.5, kEps);
  EXPECT_NEAR(exact.at("111"), 0.5, kEps);
}

TEST(ExactDistribution, TeleportationBranchEnumeration) {
  const double theta = 0.9;
  const Distribution exact =
      exact_distribution(circuits::teleportation(theta));
  double p1 = 0.0;
  for (const auto& [key, p] : exact) {
    if (key[0] == '1') p1 += p;
  }
  const double expected = std::sin(theta / 2) * std::sin(theta / 2);
  EXPECT_NEAR(p1, expected, 1e-9);
  // All four Bell branches occur with probability 1/4 each.
  double total = 0.0;
  for (const auto& [_, p] : exact) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactDistribution, EmptyForMeasurementFreeCircuit) {
  const Distribution d = exact_distribution(circuits::qft(3));
  EXPECT_TRUE(d.empty());
}

TEST(ExactDistribution, QftOfBasisStateIsUniform) {
  Circuit c = circuits::qft(3);
  c.measure_all();
  Circuit with_input(3, 3);
  with_input.x(0);
  with_input.compose(c);
  const Distribution d = exact_distribution(with_input);
  EXPECT_EQ(d.size(), 8u);
  for (const auto& [_, p] : d) EXPECT_NEAR(p, 0.125, 1e-9);
}

class InverseQftTest : public ::testing::TestWithParam<int> {};

TEST_P(InverseQftTest, QftIsUnitaryRoundTrip) {
  // Property: applying QFT then its inverse restores the basis state.
  const int n = GetParam();
  for (std::uint64_t input = 0; input < (1ULL << n); ++input) {
    Circuit c(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
      if ((input >> q) & 1ULL) c.x(static_cast<std::size_t>(q));
    }
    const Circuit fwd = circuits::qft(static_cast<std::size_t>(n));
    c.compose(fwd);
    // Inverse: reverse ops with negated parameters.
    for (auto it = fwd.operations().rbegin(); it != fwd.operations().rend();
         ++it) {
      Operation inverse = *it;
      if (inverse.kind == GateKind::kBarrier) continue;
      for (double& p : inverse.params) p = -p;
      c.append(inverse);
    }
    c.measure_all();
    const Distribution d = exact_distribution(c);
    std::string expected(static_cast<std::size_t>(n), '0');
    for (int q = 0; q < n; ++q) {
      if ((input >> q) & 1ULL) expected[static_cast<std::size_t>(n - 1 - q)] = '1';
    }
    ASSERT_NEAR(d.at(expected), 1.0, 1e-9) << "n=" << n << " input=" << input;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InverseQftTest, ::testing::Values(1, 2, 3, 4));

TEST(ToDistribution, NormalisesCounts) {
  Counts counts{{"0", 25}, {"1", 75}};
  const Distribution d = to_distribution(counts);
  EXPECT_NEAR(d.at("0"), 0.25, kEps);
  EXPECT_NEAR(d.at("1"), 0.75, kEps);
}

}  // namespace
}  // namespace qcgen::sim
