// Tests for the knowledge model, fine-tuning model, CoT scaffolds,
// pass@k, and the SimLM generator/repair behaviour.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "llm/cot.hpp"
#include "llm/finetune.hpp"
#include "llm/knowledge.hpp"
#include "llm/passk.hpp"
#include "llm/simlm.hpp"
#include "llm/templates.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/printer.hpp"
#include "qasm/parser.hpp"

namespace qcgen::llm {
namespace {

TEST(Knowledge, BoostMovesTowardsOne) {
  EXPECT_NEAR(KnowledgeState::boost(0.5, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(KnowledgeState::boost(0.5, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(KnowledgeState::boost(0.5, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(KnowledgeState::boost(0.8, -0.5), 0.4, 1e-12);
  EXPECT_THROW(KnowledgeState::boost(0.5, 1.5), InvalidArgumentError);
}

TEST(Knowledge, ProfilesAreOrderedBySize) {
  const auto small = base_knowledge(ModelProfile::kStarCoder3B);
  const auto medium = base_knowledge(ModelProfile::kStarCoder7B);
  const auto large = base_knowledge(ModelProfile::kGranite20B);
  EXPECT_LT(small.syntax_skill, medium.syntax_skill);
  EXPECT_LT(medium.syntax_skill, large.syntax_skill);
  EXPECT_LT(small.api_recency, large.api_recency);
}

TEST(Knowledge, TierSemanticsOrdered) {
  const auto k = base_knowledge(ModelProfile::kStarCoder3B);
  EXPECT_GT(k.semantic_for(AlgorithmId::kBellPair),
            k.semantic_for(AlgorithmId::kGrover));
  EXPECT_GT(k.semantic_for(AlgorithmId::kGrover),
            k.semantic_for(AlgorithmId::kTeleportation));
  EXPECT_EQ(k.semantic_for(static_cast<AlgorithmId>(9999)), 0.0);
}

TEST(Knowledge, FaultRatesDecreaseWithSkill) {
  KnowledgeState weak;
  weak.syntax_skill = 0.2;
  weak.api_recency = 0.2;
  weak.semantic[AlgorithmId::kGhz] = 0.2;
  KnowledgeState strong;
  strong.syntax_skill = 0.9;
  strong.api_recency = 0.9;
  strong.semantic[AlgorithmId::kGhz] = 0.9;
  const auto weak_rates = fault_rates(weak, AlgorithmId::kGhz);
  const auto strong_rates = fault_rates(strong, AlgorithmId::kGhz);
  EXPECT_GT(weak_rates.deprecated_import, strong_rates.deprecated_import);
  EXPECT_GT(weak_rates.parse_corruption, strong_rates.parse_corruption);
  EXPECT_GT(weak_rates.semantic_slip, strong_rates.semantic_slip);
}

TEST(Knowledge, SyntaxDifficultyScalesSyntacticChannels) {
  const auto k = base_knowledge(ModelProfile::kStarCoder3B);
  const auto easy = fault_rates(k, AlgorithmId::kGhz, 1.0);
  const auto hard = fault_rates(k, AlgorithmId::kGhz, 2.0);
  EXPECT_NEAR(hard.gate_misuse, 2.0 * easy.gate_misuse, 1e-12);
  EXPECT_NEAR(hard.semantic_slip, easy.semantic_slip, 1e-12);  // unscaled
  EXPECT_THROW(fault_rates(k, AlgorithmId::kGhz, 0.0), InvalidArgumentError);
}

TEST(FineTune, ImprovesAllAxes) {
  const auto base = base_knowledge(ModelProfile::kStarCoder3B);
  const auto tuned = apply_finetuning(base, FineTuneConfig{});
  EXPECT_GT(tuned.syntax_skill, base.syntax_skill);
  EXPECT_GT(tuned.api_recency, base.api_recency);
  for (AlgorithmId id : all_algorithms()) {
    EXPECT_GE(tuned.semantic_for(id), base.semantic_for(id));
  }
}

TEST(FineTune, MoreDataHelpsMore) {
  const auto base = base_knowledge(ModelProfile::kStarCoder3B);
  FineTuneConfig small;
  small.corpus_tokens = 500'000;
  small.upsampled_tokens = 1'500'000;
  FineTuneConfig large;
  large.corpus_tokens = 100'000'000;
  large.upsampled_tokens = 300'000'000;
  const auto tuned_small = apply_finetuning(base, small);
  const auto tuned_large = apply_finetuning(base, large);
  EXPECT_GT(tuned_large.syntax_skill, tuned_small.syntax_skill);
}

TEST(FineTune, FimOptimumAtTenPercent) {
  // The paper's measured optimum: FIM rate 0.1.
  const double at_opt = fim_quality(0.1);
  EXPECT_NEAR(at_opt, 1.0, 1e-9);
  EXPECT_LT(fim_quality(0.0), at_opt);
  EXPECT_LT(fim_quality(0.5), at_opt);
  EXPECT_LT(fim_quality(1.0), fim_quality(0.5));
  EXPECT_THROW(fim_quality(-0.1), InvalidArgumentError);
}

TEST(FineTune, DataScaleSaturates) {
  EXPECT_LT(data_scale_factor(0), 0.01);
  const double at_3m = data_scale_factor(3'000'000);
  EXPECT_GT(at_3m, 0.4);
  EXPECT_LT(at_3m, 0.65);
  EXPECT_GT(data_scale_factor(1'000'000'000), at_3m);
  EXPECT_LT(data_scale_factor(1'000'000'000), 1.0);
}

TEST(FineTune, RejectsDownsampling) {
  FineTuneConfig config;
  config.corpus_tokens = 10;
  config.upsampled_tokens = 5;
  EXPECT_THROW(
      apply_finetuning(base_knowledge(ModelProfile::kStarCoder3B), config),
      InvalidArgumentError);
}

TEST(Cot, StylesOrderedByStrength) {
  EXPECT_LT(semantic_boost(CotStyle::kZeroShot),
            semantic_boost(CotStyle::kManual));
  EXPECT_LT(semantic_boost(CotStyle::kManual),
            semantic_boost(CotStyle::kStructured));
  EXPECT_GT(scaffold_error_rate(CotStyle::kZeroShot),
            scaffold_error_rate(CotStyle::kStructured));
  EXPECT_LT(semantic_penalty(CotStyle::kManual), 0.0);
}

TEST(Cot, HandWrittenScaffoldsAlwaysFaithful) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kGrover;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto scaffold = generate_scaffold(task, CotStyle::kStructured,
                                            /*hand_written=*/true, rng);
    EXPECT_TRUE(scaffold.faithful);
  }
}

TEST(Cot, GeneratedScaffoldsFailAtConfiguredRate) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kQft;
  Rng rng(5);
  int unfaithful = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (!generate_scaffold(task, CotStyle::kManual, false, rng).faithful) {
      ++unfaithful;
    }
  }
  EXPECT_NEAR(static_cast<double>(unfaithful) / trials,
              scaffold_error_rate(CotStyle::kManual), 0.02);
}

TEST(PassAtK, KnownValues) {
  EXPECT_DOUBLE_EQ(pass_at_k(10, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(pass_at_k(10, 10, 1), 1.0);
  EXPECT_NEAR(pass_at_k(10, 5, 1), 0.5, 1e-12);
  // n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6.
  EXPECT_NEAR(pass_at_k(4, 2, 2), 1.0 - 1.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(pass_at_k(5, 4, 2), 1.0);  // n-c < k
  EXPECT_THROW(pass_at_k(5, 6, 2), InvalidArgumentError);
  EXPECT_THROW(pass_at_k(5, 2, 6), InvalidArgumentError);
}

// --- SimLM ----------------------------------------------------------

KnowledgeState perfect_knowledge() {
  KnowledgeState k;
  k.syntax_skill = 1.0;
  k.api_recency = 1.0;
  for (AlgorithmId id : all_algorithms()) k.semantic[id] = 1.0;
  return k;
}

KnowledgeState hopeless_knowledge() {
  KnowledgeState k;
  k.syntax_skill = 0.0;
  k.api_recency = 0.0;
  for (AlgorithmId id : all_algorithms()) k.semantic[id] = 0.0;
  return k;
}

TEST(SimLM, PerfectKnowledgeEmitsGoldPrograms) {
  SimLM model(perfect_knowledge(), 42);
  TaskSpec task;
  task.algorithm = AlgorithmId::kBellPair;
  for (int i = 0; i < 20; ++i) {
    const GenerationResult result = model.generate(task, GenerationContext{});
    EXPECT_TRUE(result.faults.empty());
    const auto parsed = qasm::parse(result.source);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(qasm::analyze(*parsed.program).ok());
  }
}

TEST(SimLM, HopelessKnowledgeInjectsFaults) {
  SimLM model(hopeless_knowledge(), 43);
  TaskSpec task;
  task.algorithm = AlgorithmId::kGhz;
  task.params = {{"n", 4}};
  std::size_t total_faults = 0;
  for (int i = 0; i < 30; ++i) {
    total_faults += model.generate(task, GenerationContext{}).faults.size();
  }
  EXPECT_GT(total_faults, 30u);  // more than one fault per sample on average
}

TEST(SimLM, DeterministicGivenSeed) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kQft;
  task.params = {{"n", 3}};
  SimLM a(base_knowledge(ModelProfile::kStarCoder3B), 7);
  SimLM b(base_knowledge(ModelProfile::kStarCoder3B), 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.generate(task, GenerationContext{}).source,
              b.generate(task, GenerationContext{}).source);
  }
}

TEST(SimLM, FaultKindsHaveNames) {
  EXPECT_EQ(fault_kind_name(FaultKind::kDeprecatedImport),
            "deprecated-import");
  EXPECT_EQ(fault_kind_name(FaultKind::kWrongPlan), "wrong-plan");
}

TEST(SimLM, CotScaffoldAttachedWhenRequested) {
  SimLM model(base_knowledge(ModelProfile::kStarCoder3B), 11);
  TaskSpec task;
  task.algorithm = AlgorithmId::kGrover;
  GenerationContext ctx;
  ctx.cot = CotStyle::kStructured;
  const auto result = model.generate(task, ctx);
  ASSERT_TRUE(result.scaffold.has_value());
  EXPECT_EQ(result.scaffold->style, CotStyle::kStructured);
  const auto plain = model.generate(task, GenerationContext{});
  EXPECT_FALSE(plain.scaffold.has_value());
}

TEST(SimLM, CotImprovesSemanticAccuracyStatistically) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kTeleportation;  // advanced: base is weak
  const auto count_wrong_plans = [&](bool use_cot) {
    SimLM model(base_knowledge(ModelProfile::kStarCoder3B), 13);
    GenerationContext ctx;
    if (use_cot) ctx.cot = CotStyle::kStructured;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
      const auto result = model.generate(task, ctx);
      for (const auto& fault : result.faults) {
        if (fault.kind == FaultKind::kWrongPlan) {
          ++wrong;
          break;
        }
      }
    }
    return wrong;
  };
  EXPECT_LT(count_wrong_plans(true) + 40, count_wrong_plans(false));
}

TEST(SimLM, RepairFixesDeprecatedImportEventually) {
  // Build a result with a known deprecated-import fault and drive repair
  // until fixed; with fix probability > 0 this terminates.
  SimLM model(perfect_knowledge(), 17);
  TaskSpec task;
  task.algorithm = AlgorithmId::kBellPair;
  GenerationResult result = model.generate(task, GenerationContext{});
  result.ast.imports.push_back(qasm::Import{"qiskit.aqua", 0});
  result.faults.push_back(Fault{FaultKind::kDeprecatedImport, "qiskit.aqua", 0});
  result.source = qasm::print_program(result.ast);

  bool fixed = false;
  for (int pass = 1; pass <= 60 && !fixed; ++pass) {
    const auto parsed = qasm::parse(result.source);
    ASSERT_TRUE(parsed.ok());
    const auto report = qasm::analyze(*parsed.program);
    if (report.ok()) {
      fixed = true;
      break;
    }
    result = model.repair(task, result, report.diagnostics, false,
                          GenerationContext{}, 1);
  }
  EXPECT_TRUE(fixed);
}

TEST(SimLM, StubbornOnSemanticFailure) {
  // With clean diagnostics and a semantic failure, most repair passes
  // return the same program (the model has no new information).
  SimLM model(base_knowledge(ModelProfile::kStarCoder3B), 19);
  TaskSpec task;
  task.algorithm = AlgorithmId::kQuantumWalk;
  const GenerationResult first = model.generate(task, GenerationContext{});
  int unchanged = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const auto repaired =
        model.repair(task, first, {}, /*semantic_failure=*/true,
                     GenerationContext{}, 1);
    if (repaired.source == first.source) ++unchanged;
  }
  EXPECT_GT(unchanged, trials / 2);
}

TEST(SimLM, RepairProbabilitiesReflectPaperFindings) {
  // Deprecated imports are the most repair-resistant syntactic class.
  EXPECT_LT(repair_success_probability(qasm::DiagCode::kDeprecatedImport),
            repair_success_probability(qasm::DiagCode::kParseError));
  EXPECT_LT(repair_success_probability(qasm::DiagCode::kDeprecatedImport),
            repair_success_probability(qasm::DiagCode::kQubitOutOfRange));
  EXPECT_LE(semantic_replan_probability(1), 0.1);
}

TEST(Tasks, PromptsAreDistinctAndNonEmpty) {
  std::set<std::string> prompts;
  for (AlgorithmId id : all_algorithms()) {
    TaskSpec task;
    task.algorithm = id;
    const std::string prompt = prompt_text(task);
    EXPECT_FALSE(prompt.empty());
    prompts.insert(prompt);
  }
  EXPECT_EQ(prompts.size(), all_algorithms().size());
}

TEST(Tasks, SpecIdEncodesParams) {
  TaskSpec task;
  task.algorithm = AlgorithmId::kGrover;
  task.params = {{"n", 3}, {"marked", 5}};
  EXPECT_EQ(task.id(), "grover(marked=5,n=3)");
  EXPECT_EQ(task.iparam("n", 0), 3);
  EXPECT_EQ(task.iparam("missing", 7), 7);
  EXPECT_NEAR(task.param("marked", 0.0), 5.0, 1e-12);
}

}  // namespace
}  // namespace qcgen::llm
