// Tests for the evaluation suites, reference oracle, judge and runner.

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <set>

#include "eval/judge.hpp"
#include "eval/runner.hpp"
#include "eval/suite.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "qasm/printer.hpp"

namespace qcgen::eval {
namespace {

TEST(Suite, SemanticSuiteComposition) {
  const auto suite = semantic_suite();
  EXPECT_EQ(suite.size(), 100u);
  const TierMix mix = tier_mix(suite);
  EXPECT_NEAR(mix.basic, 0.47, 1e-9);
  EXPECT_NEAR(mix.intermediate, 0.24, 1e-9);
  EXPECT_NEAR(mix.advanced, 0.29, 1e-9);
}

TEST(Suite, QheSuiteComposition) {
  const auto suite = qhe_suite();
  EXPECT_EQ(suite.size(), 60u);
  const TierMix mix = tier_mix(suite);
  EXPECT_NEAR(mix.basic, 0.8, 1e-9);
  EXPECT_NEAR(mix.advanced, 0.0, 1e-9);
}

TEST(Suite, CaseIdsAreUnique) {
  for (const auto& suite : {semantic_suite(), qhe_suite()}) {
    std::set<std::string> ids;
    for (const TestCase& tc : suite) {
      EXPECT_TRUE(ids.insert(tc.id).second) << "duplicate id " << tc.id;
      EXPECT_FALSE(tc.prompt.empty());
    }
  }
}

TEST(Suite, EveryCaseHasCompilableGold) {
  for (const TestCase& tc : semantic_suite()) {
    const sim::Circuit circuit =
        qasm::build_circuit(llm::gold_program(tc.task));
    EXPECT_GE(circuit.num_qubits(), 1u) << tc.id;
    EXPECT_FALSE(sim::exact_distribution(circuit).empty()) << tc.id;
  }
}

TEST(Oracle, CachesAndReturnsDistributions) {
  ReferenceOracle oracle;
  const auto suite = semantic_suite();
  const auto& first = oracle.reference_for(suite[0]);
  const auto& again = oracle.reference_for(suite[0]);
  EXPECT_EQ(&first, &again);  // cached
  double total = 0.0;
  for (const auto& [_, p] : first) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Judge, GoldSourcesJudgeCorrectOnWholeSuite) {
  ReferenceOracle oracle;
  const agents::SemanticAnalyzerAgent analyzer;
  for (const TestCase& tc : semantic_suite()) {
    const std::string source =
        qasm::print_program(llm::gold_program(tc.task));
    const Verdict verdict =
        judge_source(source, oracle.reference_for(tc), analyzer);
    EXPECT_TRUE(verdict.syntactic_ok) << tc.id;
    EXPECT_TRUE(verdict.semantic_ok) << tc.id;
    EXPECT_NEAR(verdict.tvd, 0.0, 1e-9) << tc.id;
  }
}

TEST(Judge, SyntacticallyBrokenSourceFails) {
  ReferenceOracle oracle;
  const agents::SemanticAnalyzerAgent analyzer;
  const TestCase tc = semantic_suite()[0];
  const Verdict verdict =
      judge_source("not even close {", oracle.reference_for(tc), analyzer);
  EXPECT_FALSE(verdict.syntactic_ok);
  EXPECT_FALSE(verdict.semantic_ok);
  EXPECT_GT(verdict.error_count, 0u);
}

TEST(Judge, WrongAlgorithmFailsSemantically) {
  ReferenceOracle oracle;
  const agents::SemanticAnalyzerAgent analyzer;
  // Judge a GHZ program against the bell-pair reference of the first case.
  const auto suite = semantic_suite();
  const TestCase& bell_case = suite[0];
  ASSERT_EQ(bell_case.task.algorithm, llm::AlgorithmId::kBellPair);
  llm::TaskSpec ghz;
  ghz.algorithm = llm::AlgorithmId::kGhz;
  ghz.params = {{"n", 2}};
  // 2-qubit GHZ == Bell: must pass. 3-qubit: must fail (register mismatch).
  const std::string ghz2 = qasm::print_program(llm::gold_program(ghz));
  const Verdict same = judge_source(ghz2, oracle.reference_for(bell_case),
                                    analyzer);
  EXPECT_TRUE(same.semantic_ok);
  ghz.params = {{"n", 3}};
  const std::string ghz3 = qasm::print_program(llm::gold_program(ghz));
  const Verdict diff = judge_source(ghz3, oracle.reference_for(bell_case),
                                    analyzer);
  EXPECT_TRUE(diff.syntactic_ok);
  EXPECT_FALSE(diff.semantic_ok);
}

TEST(Judge, OnlySyntacticErrorsFlag) {
  ReferenceOracle oracle;
  const agents::SemanticAnalyzerAgent analyzer;
  const TestCase tc = semantic_suite()[0];
  const Verdict index_error = judge_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[7]; measure_all; }",
      oracle.reference_for(tc), analyzer);
  EXPECT_FALSE(index_error.only_syntactic_errors);
  const Verdict import_error = judge_source(
      "import qiskit; import qiskit.aqua; "
      "circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; measure_all; }",
      oracle.reference_for(tc), analyzer);
  EXPECT_TRUE(import_error.only_syntactic_errors);
}

TEST(Runner, PerfectModelScoresNearlyEverything) {
  // Granite base on the 24 easiest cases, 2 samples each: high accuracy.
  auto suite = semantic_suite();
  suite.resize(24);
  RunnerOptions options;
  options.samples_per_case = 2;
  const AccuracyReport report = evaluate_technique(
      agents::TechniqueConfig::base(llm::ModelProfile::kGranite20B), suite,
      options);
  EXPECT_GT(report.semantic_rate, 0.42);
  EXPECT_GE(report.syntactic_rate, report.semantic_rate);
  EXPECT_EQ(report.cases, 24u);
}

TEST(Runner, ReportInvariants) {
  auto suite = semantic_suite();
  suite.resize(10);
  RunnerOptions options;
  options.samples_per_case = 2;
  const AccuracyReport report = evaluate_technique(
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B),
      suite, options);
  EXPECT_GE(report.syntactic_rate, report.semantic_rate);
  EXPECT_GE(report.semantic_ci.hi, report.semantic_rate);
  EXPECT_LE(report.semantic_ci.lo, report.semantic_rate);
  EXPECT_GE(report.mean_passes_used, 1.0);
  EXPECT_EQ(report.samples_per_case, 2u);
}

TEST(Runner, DeterministicGivenSeed) {
  auto suite = semantic_suite();
  suite.resize(8);
  RunnerOptions options;
  options.samples_per_case = 1;
  options.seed = 12345;
  const auto config =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  const AccuracyReport a = evaluate_technique(config, suite, options);
  const AccuracyReport b = evaluate_technique(config, suite, options);
  EXPECT_EQ(a.semantic_rate, b.semantic_rate);
  EXPECT_EQ(a.syntactic_rate, b.syntactic_rate);
}

TEST(Runner, PassAtKMonotonicInK) {
  auto suite = semantic_suite();
  suite.resize(10);
  RunnerOptions options;
  const auto config =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  const double p1 = evaluate_pass_at_k(config, suite, 4, 1, options);
  const double p4 = evaluate_pass_at_k(config, suite, 4, 4, options);
  EXPECT_GE(p4, p1);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p4, 1.0);
}

TEST(Runner, EmptySuiteRejected) {
  RunnerOptions options;
  EXPECT_THROW(
      evaluate_technique(
          agents::TechniqueConfig::base(llm::ModelProfile::kStarCoder3B), {},
          options),
      InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::eval
