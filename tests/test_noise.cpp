// Tests for the Monte-Carlo noise model and noisy execution.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/noise.hpp"

namespace qcgen::sim {
namespace {

TEST(NoiseModel, IdealDetection) {
  EXPECT_TRUE(NoiseModel::ideal().is_ideal());
  EXPECT_FALSE(NoiseModel::ibm_brisbane().is_ideal());
}

TEST(NoiseModel, ScalingClampsAndScales) {
  const NoiseModel base = NoiseModel::ibm_brisbane();
  const NoiseModel half = base.scaled(0.5);
  EXPECT_NEAR(half.depolarizing_2q, base.depolarizing_2q * 0.5, 1e-12);
  EXPECT_NEAR(half.readout_error, base.readout_error * 0.5, 1e-12);
  const NoiseModel huge = base.scaled(1e6);
  EXPECT_LE(huge.readout_error, 1.0);
  EXPECT_THROW(base.scaled(-1.0), InvalidArgumentError);
}

TEST(NoiseModel, ZeroScaleIsIdeal) {
  EXPECT_TRUE(NoiseModel::ibm_brisbane().scaled(0.0).is_ideal());
}

TEST(RunNoisy, IdealNoiseMatchesIdealRun) {
  const Circuit c = circuits::ghz(3);
  const Counts noisy = run_noisy(c, NoiseModel::ideal(),
                                 NoisyRunOptions{512, 9});
  const Counts ideal = run_ideal(c, RunOptions{512, 9});
  EXPECT_EQ(noisy, ideal);
}

TEST(RunNoisy, ReadoutErrorFlipsDeterministicOutcome) {
  // |0> measured under pure readout noise: P(1) == readout_error.
  Circuit c(1, 1);
  c.id(0);
  c.measure(0, 0);
  NoiseModel noise;
  noise.readout_error = 0.25;
  const Counts counts = run_noisy(c, noise, NoisyRunOptions{20000, 11});
  EXPECT_NEAR(outcome_probability(counts, "1"), 0.25, 0.02);
}

TEST(RunNoisy, DepolarizingDegradesGhz) {
  const Circuit c = circuits::ghz(3);
  NoiseModel noise;
  noise.depolarizing_2q = 0.05;
  const Counts counts = run_noisy(c, noise, NoisyRunOptions{8192, 13});
  const double good = outcome_probability(counts, "000") +
                      outcome_probability(counts, "111");
  EXPECT_LT(good, 1.0);
  EXPECT_GT(good, 0.7);  // 5% per 2q gate over 2 gates cannot destroy it
}

TEST(RunNoisy, StrongerNoiseIsWorse) {
  const Circuit c = circuits::deutsch_jozsa(3, true);
  const NoiseModel weak = NoiseModel::ibm_brisbane().scaled(0.2);
  const NoiseModel strong = NoiseModel::ibm_brisbane().scaled(3.0);
  const Counts weak_counts = run_noisy(c, weak, NoisyRunOptions{8192, 17});
  const Counts strong_counts = run_noisy(c, strong, NoisyRunOptions{8192, 17});
  EXPECT_GT(outcome_probability(weak_counts, "000"),
            outcome_probability(strong_counts, "000"));
}

TEST(RunNoisy, DeterministicGivenSeed) {
  const Circuit c = circuits::bell_pair();
  const NoiseModel noise = NoiseModel::ibm_brisbane();
  const Counts a = run_noisy(c, noise, NoisyRunOptions{256, 3});
  const Counts b = run_noisy(c, noise, NoisyRunOptions{256, 3});
  EXPECT_EQ(a, b);
}

TEST(RunNoisy, IdleErrorActsAtBarriers) {
  Circuit c(1, 1);
  c.barrier();
  c.measure(0, 0);
  NoiseModel noise;
  noise.idle_error = 0.3;
  const Counts counts = run_noisy(c, noise, NoisyRunOptions{20000, 19});
  // Depolarising |0>: X or Y flip it (2/3 of events) -> P(1) ~ 0.2.
  EXPECT_NEAR(outcome_probability(counts, "1"), 0.2, 0.02);
}

TEST(RunNoisy, ResetErrorLeavesExcitedState) {
  Circuit c(1, 1);
  c.x(0);
  c.reset(0);
  c.measure(0, 0);
  NoiseModel noise;
  noise.reset_error = 0.15;
  const Counts counts = run_noisy(c, noise, NoisyRunOptions{20000, 23});
  EXPECT_NEAR(outcome_probability(counts, "1"), 0.15, 0.02);
}

TEST(IdealOutcomeRetention, DecreasesWithNoise) {
  const Circuit c = circuits::deutsch_jozsa(2, true);
  const double clean =
      ideal_outcome_retention(c, NoiseModel::ideal(), 2048, 31);
  const double noisy = ideal_outcome_retention(
      c, NoiseModel::ibm_brisbane().scaled(4.0), 2048, 31);
  EXPECT_NEAR(clean, 1.0, 0.02);
  EXPECT_LT(noisy, clean);
}

TEST(RunNoisy, TeleportationUnderNoiseStaysClose) {
  const Circuit c = circuits::teleportation(0.8);
  const NoiseModel noise = NoiseModel::ibm_brisbane();
  const Counts counts = run_noisy(c, noise, NoisyRunOptions{8192, 37});
  double p1 = 0.0, total = 0.0;
  for (const auto& [key, count] : counts) {
    total += static_cast<double>(count);
    if (key[0] == '1') p1 += static_cast<double>(count);
  }
  // Noise drifts the marginal towards the fully mixed 0.5, never away.
  const double expected = std::sin(0.4) * std::sin(0.4);
  EXPECT_GT(p1 / total, expected - 0.02);
  EXPECT_LT(p1 / total, 0.5);
}

}  // namespace
}  // namespace qcgen::sim
