// Resilient-execution tests: dormant equivalence of the resilience
// layer, trial containment under 100%-failure chaos scenarios,
// degradation ladders, retry/budget semantics, and the error paths the
// pipeline must survive without any fault injection (degenerate
// topologies, empty suites, empty references).

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "agents/pipeline.hpp"
#include "agents/qec_agent.hpp"
#include "agents/semantic_agent.hpp"
#include "agents/topology.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "eval/judge.hpp"
#include "eval/runner.hpp"
#include "eval/suite.hpp"

namespace qcgen {
namespace {

std::vector<eval::TestCase> small_suite(std::size_t n) {
  auto full = eval::semantic_suite();
  full.resize(std::min(n, full.size()));
  return full;
}

agents::TechniqueConfig test_technique() {
  auto technique =
      agents::TechniqueConfig::with_rag(llm::ModelProfile::kStarCoder3B);
  technique.max_passes = 2;
  return technique;
}

eval::RunnerOptions base_options() {
  eval::RunnerOptions options;
  options.samples_per_case = 1;
  options.seed = 4242;
  options.threads = 2;
  return options;
}

// ---------------------------------------------------------------------
// Dormant behaviour: the resilience layer must be invisible until a
// stage actually fails.

TEST(Resilience, DormantPolicyDoesNotChangeResults) {
  const auto suite = small_suite(6);
  const auto technique = test_technique();

  const eval::AccuracyReport plain =
      eval::evaluate_technique(technique, suite, base_options());

  eval::RunnerOptions armed = base_options();
  armed.resilience.max_stage_retries = 3;
  armed.resilience.backoff_base_units = 2.0;
  armed.resilience.stage_budget_units = 100.0;
  const eval::AccuracyReport hardened =
      eval::evaluate_technique(technique, suite, armed);

  EXPECT_EQ(plain.syntactic_rate, hardened.syntactic_rate);
  EXPECT_EQ(plain.semantic_rate, hardened.semantic_rate);
  EXPECT_EQ(plain.mean_passes_used, hardened.mean_passes_used);
  EXPECT_TRUE(plain.trial_failures.empty());
  EXPECT_TRUE(hardened.trial_failures.empty());
  EXPECT_TRUE(plain.degradations.empty());
  EXPECT_TRUE(hardened.degradations.empty());
  EXPECT_EQ(plain.completed_rate, 1.0);
  EXPECT_EQ(hardened.completed_rate, 1.0);
}

// ---------------------------------------------------------------------
// Error paths that need no injection.

TEST(Resilience, EmptySuiteIsRejected) {
  EXPECT_THROW((void)eval::evaluate_technique(test_technique(), {},
                                              base_options()),
               InvalidArgumentError);
}

TEST(Resilience, QecPlanOnDegenerateTopologyIsInfeasibleNotFatal) {
  const agents::QecDecoderAgent agent;
  for (const auto& device : {agents::DeviceTopology::linear(2),
                             agents::DeviceTopology::linear(16),
                             agents::DeviceTopology::grid(2, 2)}) {
    agents::QecPlan plan;
    ASSERT_NO_THROW(plan = agent.plan_for(device)) << device.name();
    EXPECT_FALSE(plan.feasible) << device.name();
    EXPECT_FALSE(plan.reason.empty()) << device.name();
  }
  // Sanity: a real lattice still plans fine.
  const agents::QecPlan good =
      agent.plan_for(agents::DeviceTopology::grid(5, 5));
  EXPECT_TRUE(good.feasible) << good.reason;
}

TEST(Resilience, OracleHandlesZeroShotOptionsAndEmptyReference) {
  const auto suite = small_suite(3);
  eval::ReferenceOracle::Options zero_shots;
  zero_shots.shots = 0;
  eval::ReferenceOracle oracle(zero_shots);
  for (const eval::TestCase& test_case : suite) {
    const sim::Distribution& reference = oracle.reference_for(test_case);
    double mass = 0.0;
    for (const auto& [bitstring, p] : reference) mass += p;
    EXPECT_NEAR(mass, 1.0, 1e-9) << test_case.id;
  }
  // An empty reference distribution is the static-only sentinel: the
  // behavioural check must report a clean mismatch, not divide by zero.
  const agents::SemanticAnalyzerAgent analyzer;
  const agents::StaticReport parsed = analyzer.analyze(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; measure_all; }");
  ASSERT_TRUE(parsed.syntactic_ok);
  const agents::BehaviorReport behavior =
      analyzer.check_behavior(*parsed.circuit, sim::Distribution{});
  EXPECT_TRUE(behavior.checked);
  EXPECT_FALSE(behavior.matches);
  EXPECT_EQ(behavior.tvd, 1.0);
}

#if QCGEN_FAILPOINTS_ENABLED

std::set<std::pair<std::size_t, std::size_t>> failed_trials(
    const eval::AccuracyReport& report) {
  std::set<std::pair<std::size_t, std::size_t>> keys;
  for (const eval::TrialFailure& failure : report.trial_failures) {
    keys.emplace(failure.case_idx, failure.sample_idx);
  }
  return keys;
}

// ---------------------------------------------------------------------
// Chaos determinism: a fixed (seed, scenario) must produce identical
// reports at any thread count.

TEST(ResilienceChaos, DeterministicAcrossThreadCounts) {
  const auto suite = small_suite(8);
  const auto technique = test_technique();
  eval::RunnerOptions options = base_options();
  options.samples_per_case = 2;
  options.chaos_scenario =
      "llm.generate=error(0.25);retrieval.query=error(0.25);"
      "analyzer.simulate=error(0.25)";
  options.resilience.max_stage_retries = 1;

  options.threads = 1;
  const eval::AccuracyReport serial =
      eval::evaluate_technique(technique, suite, options);
  options.threads = 8;
  const eval::AccuracyReport parallel =
      eval::evaluate_technique(technique, suite, options);

  EXPECT_EQ(serial.syntactic_rate, parallel.syntactic_rate);
  EXPECT_EQ(serial.semantic_rate, parallel.semantic_rate);
  EXPECT_EQ(serial.completed_rate, parallel.completed_rate);
  EXPECT_EQ(serial.trial_failures, parallel.trial_failures);
  EXPECT_EQ(serial.degradations, parallel.degradations);
  // The scenario actually did something, or this test proves nothing.
  EXPECT_FALSE(serial.trial_failures.empty() &&
               serial.degradations.empty());
}

// ---------------------------------------------------------------------
// Containment: 100% failure on any single site still completes the
// full trial matrix with structured failures, never an escaped throw.

struct FullFailureCase {
  const char* scenario;
  bool expect_failures;   ///< site is mandatory and has no working ladder
  const char* fail_stage; ///< expected TrialFailure::stage when failing
};

TEST(ResilienceChaos, FullFailureScenariosCompleteTheMatrix) {
  const auto suite = small_suite(4);
  const auto technique = test_technique();
  const std::vector<FullFailureCase> cases = {
      {"llm.generate=error(1.0)", true, "generate"},
      {"analyzer.parse=error(1.0)", true, "analyze"},
      {"pool.task=error(1.0)", true, "trial"},
      // These sites degrade gracefully: the ladder absorbs the fault.
      {"retrieval.query=error(1.0)", false, ""},
      {"analyzer.simulate=error(1.0)", false, ""},
      {"analyzer.abstract=error(1.0)", false, ""},
      {"oracle.reference=error(1.0)", false, ""},
  };
  for (const FullFailureCase& chaos : cases) {
    eval::RunnerOptions options = base_options();
    options.chaos_scenario = chaos.scenario;
    eval::AccuracyReport report;
    ASSERT_NO_THROW(report = eval::evaluate_technique(technique, suite,
                                                      options))
        << chaos.scenario;
    const std::size_t total = suite.size() * options.samples_per_case;
    EXPECT_EQ(report.trial_failures.size(),
              total - static_cast<std::size_t>(
                          report.completed_rate * total + 0.5))
        << chaos.scenario;
    if (chaos.expect_failures) {
      EXPECT_EQ(report.completed_rate, 0.0) << chaos.scenario;
      EXPECT_EQ(report.semantic_rate, 0.0) << chaos.scenario;
      EXPECT_EQ(report.mean_passes_used, 0.0) << chaos.scenario;
      ASSERT_EQ(report.trial_failures.size(), total) << chaos.scenario;
      for (const eval::TrialFailure& failure : report.trial_failures) {
        EXPECT_EQ(failure.stage, chaos.fail_stage) << chaos.scenario;
        EXPECT_FALSE(failure.site.empty()) << chaos.scenario;
      }
    } else {
      EXPECT_EQ(report.completed_rate, 1.0) << chaos.scenario;
      EXPECT_TRUE(report.trial_failures.empty()) << chaos.scenario;
      EXPECT_FALSE(report.degradations.empty()) << chaos.scenario;
    }
  }
}

TEST(ResilienceChaos, OracleOutageDegradesToStaticOnlyPerCase) {
  const auto suite = small_suite(4);
  eval::RunnerOptions options = base_options();
  options.chaos_scenario = "oracle.reference=error(1.0)";
  const eval::AccuracyReport report =
      eval::evaluate_technique(test_technique(), suite, options);
  EXPECT_EQ(report.completed_rate, 1.0);
  ASSERT_EQ(report.degradations.size(), suite.size());
  for (std::size_t i = 0; i < report.degradations.size(); ++i) {
    const eval::DegradationRecord& record = report.degradations[i];
    EXPECT_EQ(record.case_idx, i);
    EXPECT_EQ(record.event.stage, "oracle");
    EXPECT_EQ(record.event.to, "static-only");
  }
  // Static-only verification: semantic mirrors syntactic.
  EXPECT_EQ(report.semantic_rate, report.syntactic_rate);
}

TEST(ResilienceChaos, VerifyLadderFallsBackToStaticOnly) {
  const auto suite = small_suite(4);
  eval::RunnerOptions options = base_options();
  options.chaos_scenario = "analyzer.simulate=error(1.0)";
  const eval::AccuracyReport report =
      eval::evaluate_technique(test_technique(), suite, options);
  EXPECT_EQ(report.completed_rate, 1.0);
  bool saw_verify = false;
  for (const eval::DegradationRecord& record : report.degradations) {
    if (record.event.stage != "verify") continue;
    saw_verify = true;
    EXPECT_EQ(record.event.from, "behavioral");
    EXPECT_EQ(record.event.to, "static-only");
    EXPECT_NE(record.event.reason.find("analyzer.simulate"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_verify);
}

TEST(ResilienceChaos, AnalyzeLadderFallsBackToCoreLints) {
  const auto suite = small_suite(4);
  eval::RunnerOptions options = base_options();
  options.chaos_scenario = "analyzer.abstract=error(1.0)";
  const eval::AccuracyReport report =
      eval::evaluate_technique(test_technique(), suite, options);
  EXPECT_EQ(report.completed_rate, 1.0);
  bool saw_analyze = false;
  for (const eval::DegradationRecord& record : report.degradations) {
    if (record.event.stage != "analyze") continue;
    saw_analyze = true;
    EXPECT_EQ(record.event.from, "abstract-lints");
    EXPECT_EQ(record.event.to, "core-lints");
  }
  EXPECT_TRUE(saw_analyze);
}

TEST(ResilienceChaos, QecLadderWalksToNone) {
  // qec.decode=error(1.0) kills every rung; semantically-correct trials
  // must still complete, ending the ladder at "none" with no plan.
  const auto suite = small_suite(10);
  eval::RunnerOptions options = base_options();
  options.chaos_scenario = "qec.decode=error(1.0)";
  agents::QecDecoderAgent::Options qec;
  qec.trials = 200;
  options.qec = qec;
  options.device = agents::DeviceTopology::grid(5, 5);
  const eval::AccuracyReport report =
      eval::evaluate_technique(test_technique(), suite, options);
  EXPECT_EQ(report.completed_rate, 1.0);
  EXPECT_TRUE(report.trial_failures.empty());
  std::vector<const eval::DegradationRecord*> qec_events;
  for (const eval::DegradationRecord& record : report.degradations) {
    if (record.event.stage == "qec") qec_events.push_back(&record);
  }
  // The suite slice must contain at least one semantic success for the
  // QEC stage to run at all; the ladder is mwpm -> union-find -> lookup
  // -> none, so events come in threes ending at "none".
  ASSERT_FALSE(qec_events.empty());
  ASSERT_EQ(qec_events.size() % 3, 0u);
  for (std::size_t i = 0; i < qec_events.size(); i += 3) {
    EXPECT_EQ(qec_events[i]->event.from, "mwpm");
    EXPECT_EQ(qec_events[i + 1]->event.from, "union-find");
    EXPECT_EQ(qec_events[i + 2]->event.from, "lookup");
    EXPECT_EQ(qec_events[i + 2]->event.to, "none");
  }
}

// ---------------------------------------------------------------------
// Retries: adding retries can only rescue trials, never break new ones,
// and the rescued run stays deterministic.

TEST(ResilienceChaos, RetriedFailuresAreASubsetOfUnretriedOnes) {
  const auto suite = small_suite(8);
  const auto technique = test_technique();
  eval::RunnerOptions options = base_options();
  options.samples_per_case = 2;
  options.chaos_scenario = "llm.generate=error(0.4)";

  options.resilience.max_stage_retries = 0;
  const auto without = failed_trials(
      eval::evaluate_technique(technique, suite, options));
  options.resilience.max_stage_retries = 2;
  const eval::AccuracyReport retried_report =
      eval::evaluate_technique(technique, suite, options);
  const auto with = failed_trials(retried_report);

  EXPECT_FALSE(without.empty());  // the rate is high enough to matter
  EXPECT_LT(with.size(), without.size());
  EXPECT_TRUE(std::includes(without.begin(), without.end(), with.begin(),
                            with.end()));
  // Surviving failures carry the retry count the policy spent.
  for (const eval::TrialFailure& failure : retried_report.trial_failures) {
    EXPECT_GT(failure.retries, 0);
  }
}

// ---------------------------------------------------------------------
// Budget and delay semantics.

TEST(ResilienceChaos, DelaysWithUnlimitedBudgetDoNotPerturbResults) {
  const auto suite = small_suite(6);
  const auto technique = test_technique();
  const eval::AccuracyReport plain =
      eval::evaluate_technique(technique, suite, base_options());

  eval::RunnerOptions delayed = base_options();
  delayed.chaos_scenario = "llm.generate=delay(2.0)";
  const eval::AccuracyReport slowed =
      eval::evaluate_technique(technique, suite, delayed);

  // Injected delays charge budget units but draw from the chaos streams,
  // never the model streams: accuracy must be bit-identical.
  EXPECT_EQ(plain.syntactic_rate, slowed.syntactic_rate);
  EXPECT_EQ(plain.semantic_rate, slowed.semantic_rate);
  EXPECT_EQ(plain.mean_passes_used, slowed.mean_passes_used);
  EXPECT_EQ(slowed.completed_rate, 1.0);
  EXPECT_TRUE(slowed.trial_failures.empty());
}

TEST(ResilienceChaos, DelayBeyondStageBudgetFailsTheStageDeterministically) {
  const auto suite = small_suite(4);
  const auto technique = test_technique();
  eval::RunnerOptions options = base_options();
  options.chaos_scenario = "llm.generate=delay(3.0)";
  options.resilience.stage_budget_units = 1.0;

  const eval::AccuracyReport first =
      eval::evaluate_technique(technique, suite, options);
  const eval::AccuracyReport second =
      eval::evaluate_technique(technique, suite, options);

  EXPECT_EQ(first.completed_rate, 0.0);
  ASSERT_FALSE(first.trial_failures.empty());
  for (const eval::TrialFailure& failure : first.trial_failures) {
    EXPECT_EQ(failure.stage, "generate");
    EXPECT_NE(failure.what.find("budget"), std::string::npos);
  }
  EXPECT_EQ(first.trial_failures, second.trial_failures);
  EXPECT_EQ(first.degradations, second.degradations);
}

#endif  // QCGEN_FAILPOINTS_ENABLED

}  // namespace
}  // namespace qcgen
