// Tests for the translation-validation engine: the equivalence checker's
// three engines (structural, Clifford canonical form, phase-polynomial
// path sums) plus the budgeted exact-simulation fallback, the certified
// fix-it application layer, and the certified transpile entry point.
//
// The soundness sweep cross-checks every template circuit (and a
// semantics-breaking mutation of each) against exact reference
// distributions: a proved-equal verdict with differing distributions, or
// a proved-different verdict with matching ones, is a checker bug.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agents/topology.hpp"
#include "common/stats.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/parser.hpp"
#include "qasm/verify/certify.hpp"
#include "qasm/verify/equivalence.hpp"
#include "sim/circuit.hpp"
#include "sim/statevector.hpp"
#include "transpile/transpiler.hpp"

namespace qcgen::qasm::verify {
namespace {

using sim::Circuit;

Certificate prove(const Circuit& lhs, const Circuit& rhs) {
  return check_equivalence(lhs, rhs);
}

// ---------------------------------------------------------------------
// Structural fast path
// ---------------------------------------------------------------------

TEST(Equivalence, IdenticalCircuitsProveStructurally) {
  const Circuit bell = sim::circuits::bell_pair();
  const Certificate cert = prove(bell, bell);
  EXPECT_TRUE(cert.proved_equal());
  EXPECT_EQ(cert.method, Method::kStructural);
  EXPECT_EQ(cert.contract, Contract::kDistribution);
}

TEST(Equivalence, NormalizationSeesThroughBarriersAndIdentities) {
  Circuit a(1, 0);
  a.h(0);
  Circuit b(1, 0);
  b.barrier();
  b.id(0);
  b.h(0);
  const Certificate cert = prove(a, b);
  EXPECT_TRUE(cert.proved_equal());
  EXPECT_EQ(cert.method, Method::kStructural);
  EXPECT_EQ(cert.contract, Contract::kUnitary);
}

// ---------------------------------------------------------------------
// Self-inverse pairs (unitary contract, Clifford engine)
// ---------------------------------------------------------------------

TEST(Equivalence, SelfInversePairsCancel) {
  const auto pair_cancels = [](auto&& emit_pair, std::size_t qubits) {
    Circuit with(qubits, 0);
    emit_pair(with);
    const Circuit empty(qubits, 0);
    const Certificate cert = prove(with, empty);
    EXPECT_TRUE(cert.proved_equal()) << cert.note;
    EXPECT_EQ(cert.contract, Contract::kUnitary);
  };
  pair_cancels([](Circuit& c) { c.h(0); c.h(0); }, 1);
  pair_cancels([](Circuit& c) { c.x(0); c.x(0); }, 1);
  pair_cancels([](Circuit& c) { c.y(0); c.y(0); }, 1);
  pair_cancels([](Circuit& c) { c.z(0); c.z(0); }, 1);
  pair_cancels([](Circuit& c) { c.s(0); c.sdg(0); }, 1);
  pair_cancels([](Circuit& c) { c.t(0); c.tdg(0); }, 1);
  pair_cancels([](Circuit& c) { c.cx(0, 1); c.cx(0, 1); }, 2);
  pair_cancels([](Circuit& c) { c.cz(0, 1); c.cz(1, 0); }, 2);
  pair_cancels([](Circuit& c) { c.swap(0, 1); c.swap(0, 1); }, 2);
}

TEST(Equivalence, SwapEqualsThreeCx) {
  Circuit lhs(2, 0);
  lhs.swap(0, 1);
  Circuit rhs(2, 0);
  rhs.cx(0, 1);
  rhs.cx(1, 0);
  rhs.cx(0, 1);
  const Certificate cert = prove(lhs, rhs);
  EXPECT_TRUE(cert.proved_equal()) << cert.note;
  EXPECT_EQ(cert.contract, Contract::kUnitary);

  // Same identity under the distribution contract.
  Circuit ml(2, 2);
  ml.h(0);
  ml.compose(lhs);
  ml.measure_all();
  Circuit mr(2, 2);
  mr.h(0);
  mr.compose(rhs);
  mr.measure_all();
  const Certificate mcert = prove(ml, mr);
  EXPECT_TRUE(mcert.proved_equal()) << mcert.note;
  EXPECT_EQ(mcert.contract, Contract::kDistribution);
}

TEST(Equivalence, CommutingReorderingsProveEqual) {
  // Z on the control commutes through CX.
  Circuit a(2, 2);
  a.h(0);
  a.z(0);
  a.cx(0, 1);
  a.measure_all();
  Circuit b(2, 2);
  b.h(0);
  b.cx(0, 1);
  b.z(0);
  b.measure_all();
  const Certificate cert = prove(a, b);
  EXPECT_TRUE(cert.proved_equal()) << cert.note;

  // Disjoint-support gates commute.
  Circuit c(2, 0);
  c.h(0);
  c.x(1);
  Circuit d(2, 0);
  d.x(1);
  d.h(0);
  EXPECT_TRUE(prove(c, d).proved_equal());
}

// ---------------------------------------------------------------------
// Clifford distribution engine: proofs of difference
// ---------------------------------------------------------------------

TEST(Equivalence, BellParityFlipIsProvedDifferentWithCounterexample) {
  const Circuit bell = sim::circuits::bell_pair();
  Circuit flipped(2, 2);
  flipped.h(0);
  flipped.cx(0, 1);
  flipped.x(0);  // breaks the c0 xor c1 = 0 parity
  flipped.measure_all();
  const Certificate cert = prove(bell, flipped);
  EXPECT_TRUE(cert.proved_different());
  EXPECT_EQ(cert.method, Method::kClifford);
  EXPECT_FALSE(cert.counterexample.empty());
}

TEST(Equivalence, DeterministicMeasurementFlipProvedDifferent) {
  Circuit zero(1, 1);
  zero.measure(0, 0);
  Circuit one(1, 1);
  one.x(0);
  one.measure(0, 0);
  const Certificate cert = prove(zero, one);
  EXPECT_TRUE(cert.proved_different());
  EXPECT_FALSE(cert.counterexample.empty());
}

TEST(Equivalence, MeasurePresenceMismatchProvedDifferent) {
  Circuit measured(1, 1);
  measured.h(0);
  measured.measure(0, 0);
  Circuit bare(1, 1);
  bare.h(0);
  EXPECT_TRUE(prove(measured, bare).proved_different());
}

// ---------------------------------------------------------------------
// Path-sum / phase-polynomial engine
// ---------------------------------------------------------------------

TEST(Equivalence, TTEqualsS) {
  Circuit tt(1, 0);
  tt.h(0);  // put a variable on the wire so the phases are observable
  tt.t(0);
  tt.t(0);
  Circuit s(1, 0);
  s.h(0);
  s.s(0);
  const Certificate cert = prove(tt, s);
  EXPECT_TRUE(cert.proved_equal()) << cert.note;
}

TEST(Equivalence, RotationPairCancels) {
  Circuit lhs(1, 0);
  lhs.h(0);
  lhs.rz(0.7, 0);
  lhs.rz(-0.7, 0);
  const Circuit rhs = [] {
    Circuit c(1, 0);
    c.h(0);
    return c;
  }();
  EXPECT_TRUE(prove(lhs, rhs).proved_equal());
}

TEST(Equivalence, RzEqualsPhaseUpToGlobalPhase) {
  Circuit rz(1, 0);
  rz.h(0);
  rz.rz(0.7, 0);
  Circuit p(1, 0);
  p.h(0);
  p.p(0.7, 0);
  EXPECT_TRUE(prove(rz, p).proved_equal());
}

TEST(Equivalence, ControlledPhaseDifferenceCaught) {
  Circuit a(2, 0);
  a.h(0);
  a.h(1);
  a.cp(0.5, 0, 1);
  Circuit b(2, 0);
  b.h(0);
  b.h(1);
  b.cp(0.9, 0, 1);
  const Certificate cert = prove(a, b);
  EXPECT_TRUE(cert.proved_different());
}

// ---------------------------------------------------------------------
// Exact-simulation fallback and its budget
// ---------------------------------------------------------------------

TEST(Equivalence, NonCliffordRotationsFallBackToExactSim) {
  Circuit a(1, 1);
  a.ry(0.3, 0);
  a.measure(0, 0);
  Circuit b(1, 1);
  b.ry(0.3, 0);
  b.barrier();
  b.measure(0, 0);
  const Certificate equal = prove(a, b);
  EXPECT_TRUE(equal.proved_equal()) << equal.note;

  Circuit c(1, 1);
  c.ry(0.4, 0);
  c.measure(0, 0);
  const Certificate different = prove(a, c);
  EXPECT_TRUE(different.proved_different());
  EXPECT_EQ(different.method, Method::kExactSim);
}

TEST(Equivalence, OverBudgetYieldsUnknownNeverAGuess) {
  Circuit a(13, 0);
  a.rx(0.3, 0);
  Circuit b(13, 0);
  b.rx(0.4, 0);
  const Certificate cert = check_equivalence(a, b);
  EXPECT_EQ(cert.verdict, Verdict::kUnknown);
  EXPECT_FALSE(cert.note.empty());
}

TEST(Equivalence, DisabledFallbackYieldsUnknown) {
  Options options;
  options.simulation_fallback = false;
  Circuit a(1, 0);
  a.ry(0.3, 0);
  Circuit b(1, 0);
  b.ry(0.4, 0);
  const Certificate cert = check_equivalence(a, b, options);
  EXPECT_EQ(cert.verdict, Verdict::kUnknown);
}

// ---------------------------------------------------------------------
// Soundness sweep: template corpus cross-checked vs exact distributions
// ---------------------------------------------------------------------

std::vector<std::pair<std::string, Circuit>> template_corpus() {
  using namespace sim::circuits;
  return {
      {"bell", bell_pair()},
      {"ghz3", ghz(3)},
      {"dj-const", deutsch_jozsa(3, true)},
      {"dj-balanced", deutsch_jozsa(3, false)},
      {"grover", grover(2, 0b11, 1)},
      {"teleport", teleportation(0.3)},
      {"bv", bernstein_vazirani(0b101, 3)},
      {"walk", quantum_walk(2, 2)},
  };
}

TEST(EquivalenceSoundness, TemplateSweepAgreesWithExactSimulation) {
  for (const auto& [name, circuit] : template_corpus()) {
    // Reflexivity.
    const Certificate self = prove(circuit, circuit);
    EXPECT_TRUE(self.proved_equal()) << name << ": " << self.note;

    // A bit-flip prepended to the circuit, cross-checked against the
    // exact reference distributions.
    Circuit mutated(circuit.num_qubits(), circuit.num_clbits());
    mutated.x(0);
    mutated.compose(circuit);
    const Certificate cert = prove(circuit, mutated);
    const double tvd = total_variation_distance(
        sim::exact_distribution(circuit), sim::exact_distribution(mutated));
    if (tvd > 1e-9) {
      EXPECT_TRUE(cert.proved_different())
          << name << ": tvd=" << tvd << " but verdict was not "
          << "proved-different (" << cert.note << ")";
    } else {
      EXPECT_FALSE(cert.proved_different())
          << name << ": distributions match but checker refuted";
    }
    EXPECT_NE(cert.verdict, Verdict::kUnknown) << name << ": " << cert.note;
  }
}

// ---------------------------------------------------------------------
// Certified fix-it application
// ---------------------------------------------------------------------

AnalysisReport analyze_source(const std::string& source) {
  const ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok());
  return analyze(*parsed.program);
}

const std::string kRedundantPairSource =
    "import qiskit;\n"
    "circuit main(q: 1, c: 1) {\n"
    "h q[0];\n"
    "h q[0];\n"
    "measure q[0] -> c[0];\n"
    "}\n";

TEST(CertifyFixIts, PreservingFixItAppliesWithCertificate) {
  const AnalysisReport report = analyze_source(kRedundantPairSource);
  const CertifiedFixIts result =
      certify_and_apply_fixits(kRedundantPairSource, report.diagnostics);
  EXPECT_GE(result.applied, 1u);
  EXPECT_GE(result.certified, 1u);
  EXPECT_EQ(result.rejected, 0u);
  // The patched program re-analyzes clean of the original finding.
  const AnalysisReport again = analyze_source(result.source);
  for (const Diagnostic& d : again.diagnostics) {
    EXPECT_NE(d.code, DiagCode::kRedundantGatePair);
  }
}

TEST(CertifyFixIts, ForgedNonPreservingFixItIsRejected) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "x q[0];\n"
      "measure q[0] -> c[0];\n"
      "}\n";
  // A lint pass (wrongly) claims the X is dead and removable; the
  // checker must catch the lie — removing it flips the measurement.
  Diagnostic forged;
  forged.severity = Severity::kWarning;
  forged.code = DiagCode::kDeadOperation;
  forged.message = "forged dead-operation claim";
  forged.line = 3;
  forged.fixit = FixIt{3, 3, "", "x q[0]"};
  const CertifiedFixIts result = certify_and_apply_fixits(source, {forged});
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.source, source);
  ASSERT_EQ(result.verify_diagnostics.size(), 1u);
  EXPECT_EQ(result.verify_diagnostics[0].code, DiagCode::kNonPreservingFixIt);
  EXPECT_EQ(result.verify_diagnostics[0].pass_id,
            "verify.translation-validation");
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_TRUE(result.records[0].certificate.proved_different());
}

TEST(CertifyFixIts, OverlappingFixItsConflictDeterministically) {
  const AnalysisReport report = analyze_source(kRedundantPairSource);
  // Duplicate every diagnostic: the copies target the same lines and
  // must be rejected as conflicts, not applied twice.
  std::vector<Diagnostic> doubled = report.diagnostics;
  doubled.insert(doubled.end(), report.diagnostics.begin(),
                 report.diagnostics.end());
  const CertifiedFixIts result =
      certify_and_apply_fixits(kRedundantPairSource, doubled);
  EXPECT_GE(result.rejected, 1u);
  bool saw_conflict = false;
  for (const Diagnostic& d : result.verify_diagnostics) {
    if (d.code == DiagCode::kFixItConflict) saw_conflict = true;
  }
  EXPECT_TRUE(saw_conflict);
  // Certified application refines plain application: same final source.
  EXPECT_EQ(result.source, apply_fixits(kRedundantPairSource, doubled).source);
}

TEST(CertifyFixIts, PreservationObligationsMatchDesign) {
  EXPECT_TRUE(fixit_claims_preservation(DiagCode::kRedundantGatePair));
  EXPECT_TRUE(fixit_claims_preservation(DiagCode::kDeadOperation));
  EXPECT_TRUE(fixit_claims_preservation(DiagCode::kDeprecatedImport));
  EXPECT_FALSE(fixit_claims_preservation(DiagCode::kNoMeasurement));
  EXPECT_FALSE(fixit_claims_preservation(DiagCode::kWrongArity));
}

// ---------------------------------------------------------------------
// certify_rewrite and certificate rendering
// ---------------------------------------------------------------------

TEST(CertifyRewrite, StageLabelsNonEqualVerdicts) {
  Circuit before(1, 1);
  before.x(0);
  before.measure(0, 0);
  Circuit after(1, 1);
  after.measure(0, 0);
  const Certificate cert = certify_rewrite(before, after, "repair");
  EXPECT_TRUE(cert.proved_different());
  EXPECT_NE(cert.note.find("stage repair"), std::string::npos);
  const std::string summary = certificate_summary(cert);
  EXPECT_NE(summary.find("proved-different"), std::string::npos);
  EXPECT_NE(summary.find(cert.counterexample), std::string::npos);
}

// ---------------------------------------------------------------------
// Certified transpilation
// ---------------------------------------------------------------------

TEST(TranspileCertified, MeasuredCircuitCertifiesDirectly) {
  const auto device = agents::DeviceTopology::linear(4);
  const transpile::CertifiedTranspile certified =
      transpile::transpile_certified(sim::circuits::ghz(3), device);
  EXPECT_TRUE(certified.certificate.proved_equal())
      << certificate_summary(certified.certificate);
  EXPECT_EQ(certified.certificate.contract, Contract::kDistribution);
}

TEST(TranspileCertified, MeasurementFreeCircuitCertifiesThroughFinalLayout) {
  const auto device = agents::DeviceTopology::linear(4);
  const transpile::CertifiedTranspile certified =
      transpile::transpile_certified(sim::circuits::qft(3), device);
  EXPECT_TRUE(certified.certificate.proved_equal())
      << certificate_summary(certified.certificate);
}

}  // namespace
}  // namespace qcgen::qasm::verify
