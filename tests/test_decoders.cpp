// Tests for syndrome sampling, detection events and the decoders.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qec/decoder.hpp"
#include "qec/lookup_decoder.hpp"
#include "qec/mwpm_decoder.hpp"
#include "qec/pauli_frame.hpp"
#include "qec/union_find_decoder.hpp"

namespace qcgen::qec {
namespace {

TEST(PauliFrame, WeightAndApply) {
  PauliFrame a(4);
  a.x[0] = 1;
  a.z[0] = 1;  // Y on qubit 0
  a.z[2] = 1;
  EXPECT_EQ(a.weight(), 2u);
  PauliFrame b(4);
  b.x[0] = 1;
  a.apply(b);
  EXPECT_EQ(a.x[0], 0);
  EXPECT_EQ(a.z[0], 1);
  PauliFrame wrong(3);
  EXPECT_THROW(a.apply(wrong), InvalidArgumentError);
}

TEST(Syndrome, SingleXErrorTriggersAdjacentZStabs) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  PauliFrame frame(code.num_data_qubits());
  frame.x[code.data_index(1, 1)] = 1;  // bulk qubit
  const Syndrome syn = measure_syndrome(code, frame);
  std::size_t z_defects = 0;
  for (auto b : syn.z) z_defects += b;
  std::size_t x_defects = 0;
  for (auto b : syn.x) x_defects += b;
  EXPECT_EQ(z_defects, 2u);  // bulk X error touches two Z plaquettes
  EXPECT_EQ(x_defects, 0u);  // and no X plaquettes
}

TEST(Syndrome, StabilizerErrorIsInvisible) {
  // Applying an entire Z-stabilizer as an error yields a trivial syndrome.
  const SurfaceCode code = SurfaceCode::rotated(3);
  PauliFrame frame(code.num_data_qubits());
  const auto& z_idx = code.stabilizer_indices(PauliType::kZ);
  for (std::size_t q : code.stabilizers()[z_idx[0]].data_qubits) {
    frame.z[q] ^= 1;
  }
  const Syndrome syn = measure_syndrome(code, frame);
  for (auto b : syn.x) EXPECT_EQ(b, 0);
  for (auto b : syn.z) EXPECT_EQ(b, 0);
}

TEST(SampleHistory, NoNoiseMeansNoEvents) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  Rng rng(1);
  const SyndromeHistory history =
      sample_history(code, PhenomenologicalNoise{0.0, 0.0}, 3, rng);
  EXPECT_EQ(history.rounds.size(), 4u);  // 3 noisy + final perfect
  EXPECT_TRUE(detection_events(history, PauliType::kX).empty());
  EXPECT_TRUE(detection_events(history, PauliType::kZ).empty());
  EXPECT_EQ(history.frame.weight(), 0u);
}

TEST(SampleHistory, MeasurementNoiseMakesPairedEvents) {
  // Pure measurement noise: every flip creates two temporal events for
  // the same node (flip on, flip off), except flips in the last noisy
  // round which pair with the perfect round.
  const SurfaceCode code = SurfaceCode::rotated(3);
  Rng rng(7);
  const SyndromeHistory history =
      sample_history(code, PhenomenologicalNoise{0.0, 0.3}, 4, rng);
  const auto events = detection_events(history, PauliType::kZ);
  EXPECT_EQ(events.size() % 2, 0u);
  EXPECT_EQ(history.frame.weight(), 0u);  // no data errors at all
}

TEST(DetectionEvents, DifferencingLogic) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  SyndromeHistory history(code.num_data_qubits());
  Syndrome s0;
  s0.x.assign(4, 0);
  s0.z.assign(4, 0);
  Syndrome s1 = s0;
  s1.z[2] = 1;  // appears in round 1
  Syndrome s2 = s1;  // persists in round 2: no new event
  history.rounds = {s0, s1, s2};
  const auto events = detection_events(history, PauliType::kZ);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_EQ(events[0].round, 1u);
}

class DecoderKindTest : public ::testing::TestWithParam<DecoderKind> {};

TEST_P(DecoderKindTest, EmptySyndromeDecodesToNothing) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto decoder = make_decoder(GetParam(), code, PauliType::kZ);
  EXPECT_TRUE(decoder->decode({}).empty());
}

TEST_P(DecoderKindTest, CorrectsEverySingleDataError) {
  // Distance-3 property: any single X error, measured perfectly, must be
  // corrected without a logical flip by every decoder.
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto decoder = make_decoder(GetParam(), code, PauliType::kZ);
  for (std::size_t q = 0; q < code.num_data_qubits(); ++q) {
    PauliFrame frame(code.num_data_qubits());
    frame.x[q] = 1;
    SyndromeHistory history(code.num_data_qubits());
    history.frame = frame;
    history.rounds = {measure_syndrome(code, frame)};
    const auto events = detection_events(history, PauliType::kZ);
    const auto fix = decoder->decode(events);
    PauliFrame residual = frame;
    residual.apply(correction_frame(code, PauliType::kZ, fix));
    // Residual must be a stabilizer (trivial syndrome, no logical flip).
    const Syndrome post = measure_syndrome(code, residual);
    for (auto b : post.z) EXPECT_EQ(b, 0) << "qubit " << q;
    EXPECT_FALSE(logical_flip(code, residual, PauliType::kX))
        << decoder->name() << " failed on single X at qubit " << q;
  }
}

TEST_P(DecoderKindTest, CorrectsEverySingleZError) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto decoder = make_decoder(GetParam(), code, PauliType::kX);
  for (std::size_t q = 0; q < code.num_data_qubits(); ++q) {
    PauliFrame frame(code.num_data_qubits());
    frame.z[q] = 1;
    SyndromeHistory history(code.num_data_qubits());
    history.frame = frame;
    history.rounds = {measure_syndrome(code, frame)};
    const auto events = detection_events(history, PauliType::kX);
    const auto fix = decoder->decode(events);
    PauliFrame residual = frame;
    residual.apply(correction_frame(code, PauliType::kX, fix));
    EXPECT_FALSE(logical_flip(code, residual, PauliType::kZ))
        << decoder->name() << " failed on single Z at qubit " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecoders, DecoderKindTest,
    ::testing::Values(DecoderKind::kLookup, DecoderKind::kGreedy,
                      DecoderKind::kMwpm, DecoderKind::kUnionFind),
    [](const auto& info) {
      std::string name(decoder_kind_name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MatchingDecoders, CorrectSingleErrorsAtDistance5) {
  const SurfaceCode code = SurfaceCode::rotated(5);
  for (DecoderKind kind :
       {DecoderKind::kGreedy, DecoderKind::kMwpm, DecoderKind::kUnionFind}) {
    auto decoder = make_decoder(kind, code, PauliType::kZ);
    for (std::size_t q = 0; q < code.num_data_qubits(); ++q) {
      PauliFrame frame(code.num_data_qubits());
      frame.x[q] = 1;
      SyndromeHistory history(code.num_data_qubits());
      history.frame = frame;
      history.rounds = {measure_syndrome(code, frame)};
      const auto fix =
          decoder->decode(detection_events(history, PauliType::kZ));
      PauliFrame residual = frame;
      residual.apply(correction_frame(code, PauliType::kZ, fix));
      EXPECT_FALSE(logical_flip(code, residual, PauliType::kX))
          << decoder_kind_name(kind) << " qubit " << q;
    }
  }
}

TEST(MwpmDecoder, CorrectsWeightTwoErrorsAtDistance5) {
  // d=5 corrects any weight-2 error under perfect measurement.
  const SurfaceCode code = SurfaceCode::rotated(5);
  MwpmDecoder decoder(code, PauliType::kZ);
  for (std::size_t q1 = 0; q1 < code.num_data_qubits(); q1 += 2) {
    for (std::size_t q2 = q1 + 1; q2 < code.num_data_qubits(); q2 += 3) {
      PauliFrame frame(code.num_data_qubits());
      frame.x[q1] = 1;
      frame.x[q2] = 1;
      SyndromeHistory history(code.num_data_qubits());
      history.frame = frame;
      history.rounds = {measure_syndrome(code, frame)};
      const auto fix =
          decoder.decode(detection_events(history, PauliType::kZ));
      PauliFrame residual = frame;
      residual.apply(correction_frame(code, PauliType::kZ, fix));
      EXPECT_FALSE(logical_flip(code, residual, PauliType::kX))
          << "qubits " << q1 << "," << q2;
    }
  }
}

TEST(LookupDecoder, RequiresDistanceThree) {
  EXPECT_THROW(LookupDecoder(SurfaceCode::rotated(5), PauliType::kZ),
               InvalidArgumentError);
}

TEST(LookupDecoder, TableIsMinimalForSingleDefectSyndromes) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  const LookupDecoder decoder(code, PauliType::kZ);
  // Trivial syndrome -> empty correction.
  EXPECT_TRUE(decoder.correction_for(0).empty());
  // Every single-bit syndrome has a correction of weight 1 or 2.
  for (std::size_t s = 0; s < 4; ++s) {
    const auto& fix = decoder.correction_for(1ULL << s);
    EXPECT_GE(fix.size(), 1u);
    EXPECT_LE(fix.size(), 2u);
  }
}

TEST(DecoderFactory, NamesAndTypes) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto lookup = make_decoder(DecoderKind::kLookup, code, PauliType::kZ);
  EXPECT_EQ(lookup->name(), "lookup");
  auto greedy = make_decoder(DecoderKind::kGreedy, code, PauliType::kX);
  EXPECT_EQ(greedy->name(), "greedy");
  EXPECT_EQ(greedy->stabilizer_type(), PauliType::kX);
  auto mwpm = make_decoder(DecoderKind::kMwpm, code, PauliType::kZ);
  EXPECT_EQ(mwpm->name(), "mwpm");
  auto uf = make_decoder(DecoderKind::kUnionFind, code, PauliType::kZ);
  EXPECT_EQ(uf->name(), "union-find");
}

TEST(CorrectionFrame, TypeMapping) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  const PauliFrame zfix = correction_frame(code, PauliType::kZ, {0, 0, 1});
  EXPECT_EQ(zfix.x[0], 0);  // listed twice: cancels
  EXPECT_EQ(zfix.x[1], 1);  // Z stabilizers fix X errors
  EXPECT_EQ(zfix.z[1], 0);
  const PauliFrame xfix = correction_frame(code, PauliType::kX, {2});
  EXPECT_EQ(xfix.z[2], 1);
  EXPECT_THROW(correction_frame(code, PauliType::kZ, {99}),
               InvalidArgumentError);
}

TEST(SpacetimeDistance, CombinesSpaceAndTime) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  const MatchingGraph graph(code, PauliType::kZ);
  const DetectionEvent a{0, 0};
  const DetectionEvent b{0, 3};
  EXPECT_EQ(spacetime_distance(graph, a, b), 3u);
  const DetectionEvent c{1, 1};
  EXPECT_EQ(spacetime_distance(graph, a, c), graph.distance(0, 1) + 1);
}

}  // namespace
}  // namespace qcgen::qec
