// Structural tests for the rotated surface code and its matching graph.

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "qec/matching_graph.hpp"
#include "qec/surface_code.hpp"

namespace qcgen::qec {
namespace {

class SurfaceCodeStructure : public ::testing::TestWithParam<int> {};

TEST_P(SurfaceCodeStructure, CountsMatchTheory) {
  const int d = GetParam();
  const SurfaceCode code = SurfaceCode::rotated(d);
  EXPECT_EQ(code.distance(), d);
  EXPECT_EQ(code.num_data_qubits(), static_cast<std::size_t>(d * d));
  EXPECT_EQ(code.stabilizers().size(), static_cast<std::size_t>(d * d - 1));
  EXPECT_EQ(code.num_stabilizers(PauliType::kX),
            static_cast<std::size_t>((d * d - 1) / 2));
  EXPECT_EQ(code.num_stabilizers(PauliType::kZ),
            static_cast<std::size_t>((d * d - 1) / 2));
}

TEST_P(SurfaceCodeStructure, PlaquetteWeights) {
  const SurfaceCode code = SurfaceCode::rotated(GetParam());
  std::size_t weight2 = 0;
  for (const Stabilizer& s : code.stabilizers()) {
    ASSERT_TRUE(s.data_qubits.size() == 2 || s.data_qubits.size() == 4);
    if (s.data_qubits.size() == 2) ++weight2;
  }
  // 2(d-1) boundary stabilizers of weight 2.
  EXPECT_EQ(weight2, static_cast<std::size_t>(2 * (GetParam() - 1)));
}

TEST_P(SurfaceCodeStructure, EveryDataQubitCoveredByBothTypes) {
  const SurfaceCode code = SurfaceCode::rotated(GetParam());
  for (std::size_t q = 0; q < code.num_data_qubits(); ++q) {
    const auto& x_owners = code.stabilizers_on_qubit(PauliType::kX, q);
    const auto& z_owners = code.stabilizers_on_qubit(PauliType::kZ, q);
    EXPECT_GE(x_owners.size(), 1u);
    EXPECT_LE(x_owners.size(), 2u);
    EXPECT_GE(z_owners.size(), 1u);
    EXPECT_LE(z_owners.size(), 2u);
  }
}

TEST_P(SurfaceCodeStructure, StabilizersCommute) {
  // CSS commutation: every X stabilizer overlaps every Z stabilizer on an
  // even number of data qubits.
  const SurfaceCode code = SurfaceCode::rotated(GetParam());
  for (std::size_t xi : code.stabilizer_indices(PauliType::kX)) {
    for (std::size_t zi : code.stabilizer_indices(PauliType::kZ)) {
      const auto& xs = code.stabilizers()[xi].data_qubits;
      const auto& zs = code.stabilizers()[zi].data_qubits;
      std::size_t overlap = 0;
      for (std::size_t q : xs) {
        if (std::find(zs.begin(), zs.end(), q) != zs.end()) ++overlap;
      }
      EXPECT_EQ(overlap % 2, 0u) << "X stab " << xi << " vs Z stab " << zi;
    }
  }
}

TEST_P(SurfaceCodeStructure, LogicalOperatorsValid) {
  const int d = GetParam();
  const SurfaceCode code = SurfaceCode::rotated(d);
  EXPECT_EQ(code.logical_x_support().size(), static_cast<std::size_t>(d));
  EXPECT_EQ(code.logical_z_support().size(), static_cast<std::size_t>(d));
  // Logical X (X string) must commute with every Z stabilizer: even
  // overlap with each Z plaquette.
  for (std::size_t zi : code.stabilizer_indices(PauliType::kZ)) {
    const auto& zs = code.stabilizers()[zi].data_qubits;
    std::size_t overlap = 0;
    for (std::size_t q : code.logical_x_support()) {
      if (std::find(zs.begin(), zs.end(), q) != zs.end()) ++overlap;
    }
    EXPECT_EQ(overlap % 2, 0u);
  }
  // Logical Z must commute with every X stabilizer.
  for (std::size_t xi : code.stabilizer_indices(PauliType::kX)) {
    const auto& xs = code.stabilizers()[xi].data_qubits;
    std::size_t overlap = 0;
    for (std::size_t q : code.logical_z_support()) {
      if (std::find(xs.begin(), xs.end(), q) != xs.end()) ++overlap;
    }
    EXPECT_EQ(overlap % 2, 0u);
  }
  // Logical X and Z anticommute: odd intersection.
  std::size_t cross = 0;
  for (std::size_t q : code.logical_x_support()) {
    const auto& zsup = code.logical_z_support();
    if (std::find(zsup.begin(), zsup.end(), q) != zsup.end()) ++cross;
  }
  EXPECT_EQ(cross % 2, 1u);
}

INSTANTIATE_TEST_SUITE_P(Distances, SurfaceCodeStructure,
                         ::testing::Values(3, 5, 7, 9));

TEST(SurfaceCode, RejectsEvenOrSmallDistances) {
  EXPECT_THROW(SurfaceCode::rotated(2), InvalidArgumentError);
  EXPECT_THROW(SurfaceCode::rotated(4), InvalidArgumentError);
  EXPECT_THROW(SurfaceCode::rotated(1), InvalidArgumentError);
}

TEST(SurfaceCode, DataIndexHelpers) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  EXPECT_EQ(code.data_index(1, 2), 5u);
  EXPECT_EQ(code.data_row(5), 1);
  EXPECT_EQ(code.data_col(5), 2);
  EXPECT_THROW(code.data_index(3, 0), InvalidArgumentError);
}

TEST(SurfaceCode, AsciiRenderingHasExpectedGlyphs) {
  const std::string art = SurfaceCode::rotated(3).to_ascii();
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
  EXPECT_NE(art.find('Z'), std::string::npos);
}

TEST(MatchingGraph, ConnectivityAndBoundaries) {
  const SurfaceCode code = SurfaceCode::rotated(5);
  for (PauliType type : {PauliType::kX, PauliType::kZ}) {
    const MatchingGraph graph(code, type);
    EXPECT_EQ(graph.num_nodes(), code.num_stabilizers(type));
    for (std::size_t a = 0; a < graph.num_nodes(); ++a) {
      EXPECT_GE(graph.boundary_distance(a), 1u);
      for (std::size_t b = 0; b < graph.num_nodes(); ++b) {
        EXPECT_LT(graph.distance(a, b), 100u) << "disconnected nodes";
        EXPECT_EQ(graph.distance(a, b), graph.distance(b, a));
      }
    }
  }
}

TEST(MatchingGraph, PathsCrossClaimedQubits) {
  const SurfaceCode code = SurfaceCode::rotated(5);
  const MatchingGraph graph(code, PauliType::kZ);
  for (std::size_t a = 0; a < graph.num_nodes(); ++a) {
    for (std::size_t b = 0; b < graph.num_nodes(); ++b) {
      const auto path = graph.path_qubits(a, b);
      EXPECT_EQ(path.size(), graph.distance(a, b));
      // Path qubits must be distinct.
      const std::set<std::size_t> unique(path.begin(), path.end());
      EXPECT_EQ(unique.size(), path.size());
    }
    const auto bpath = graph.boundary_path_qubits(a);
    EXPECT_EQ(bpath.size(), graph.boundary_distance(a));
  }
}

TEST(MatchingGraph, PathConnectsEndpointSyndromes) {
  // Property: flipping errors along path_qubits(a, b) produces syndrome
  // defects exactly at plaquettes a and b.
  const SurfaceCode code = SurfaceCode::rotated(5);
  const MatchingGraph graph(code, PauliType::kZ);
  const auto& z_list = code.stabilizer_indices(PauliType::kZ);
  for (std::size_t a = 0; a < graph.num_nodes(); a += 3) {
    for (std::size_t b = 0; b < graph.num_nodes(); b += 4) {
      if (a == b) continue;
      std::vector<std::uint8_t> syndrome(z_list.size(), 0);
      for (std::size_t q : graph.path_qubits(a, b)) {
        for (std::size_t pos : code.stabilizers_on_qubit(PauliType::kZ, q)) {
          syndrome[pos] ^= 1;
        }
      }
      for (std::size_t pos = 0; pos < syndrome.size(); ++pos) {
        const bool expect_defect = (pos == a || pos == b);
        EXPECT_EQ(syndrome[pos] != 0, expect_defect)
            << "a=" << a << " b=" << b << " pos=" << pos;
      }
    }
  }
}

TEST(MatchingGraph, BoundaryPathTerminatesCleanly) {
  // Flipping errors along a boundary path creates exactly one defect.
  const SurfaceCode code = SurfaceCode::rotated(5);
  const MatchingGraph graph(code, PauliType::kX);
  const auto& x_list = code.stabilizer_indices(PauliType::kX);
  for (std::size_t a = 0; a < graph.num_nodes(); ++a) {
    std::vector<std::uint8_t> syndrome(x_list.size(), 0);
    for (std::size_t q : graph.boundary_path_qubits(a)) {
      for (std::size_t pos : code.stabilizers_on_qubit(PauliType::kX, q)) {
        syndrome[pos] ^= 1;
      }
    }
    std::size_t defects = 0;
    for (auto s : syndrome) defects += s;
    EXPECT_EQ(defects, 1u);
    EXPECT_EQ(syndrome[a], 1);
  }
}

}  // namespace
}  // namespace qcgen::qec
