// Tests for the static resource-analysis engine (qasm/analysis) and the
// resource.* lint passes it feeds:
//  - an exact-enumeration cross-check: an independent AST walker mirrors
//    the documented scheduling semantics (resources.hpp) and must agree
//    with the engine on every gold template's counts, depth and T-depth;
//  - conditional cost ranges with and without abstract-interpreter
//    reachability refinement;
//  - lifetimes, roles, ALAP slack, and positive/negative cases for each
//    resource.* pass;
//  - the proof gate: every landed resource.qubit-reuse fix-it must carry
//    a proved-equal certificate (zero uncertified mutations), and
//    proved-equal rewrites leave the resource counts consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/stats.hpp"
#include "llm/tasks.hpp"
#include "llm/templates.hpp"
#include "qasm/analysis/resources.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/builder.hpp"
#include "qasm/lint/abstract/interpreter.hpp"
#include "qasm/lint/facts.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "qasm/verify/certify.hpp"
#include "sim/statevector.hpp"

namespace qcgen::qasm {
namespace {

using analysis::CircuitResources;
using analysis::QubitLifetime;
using analysis::ResourceFacts;
using analysis::ResourceSummary;

Program parse_ok(const std::string& source) {
  ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok()) << format_error_trace(parsed.diagnostics);
  return *parsed.program;
}

/// Engine output for the entry circuit of `source`, no abstract facts.
CircuitResources entry_resources(const std::string& source) {
  const Program program = parse_ok(source);
  const lint::ProgramFacts facts = lint::ProgramFacts::compute(program);
  const ResourceFacts resources =
      ResourceFacts::compute(facts, LanguageRegistry::current());
  for (std::size_t ci = 0; ci < facts.circuits.size(); ++ci) {
    if (facts.circuits[ci].circuit == program.entry()) {
      return resources.circuits[ci];
    }
  }
  return {};
}

AnalysisReport analyze_source(const std::string& source,
                              const AnalyzerOptions& options = {}) {
  const ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok()) << format_error_trace(parsed.diagnostics);
  return analyze(*parsed.program, LanguageRegistry::current(), options);
}

bool has_code(const AnalysisReport& report, DiagCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Independent exact-enumeration mirror of the scheduling semantics
// ---------------------------------------------------------------------

/// Re-derives every summary quantity by walking the raw AST with its own
/// level clocks — deliberately sharing no code with the engine beyond
/// the gate-metadata tables, so a scheduling regression cannot cancel
/// out of the comparison.
struct MirrorCounts {
  std::size_t gates = 0;
  std::size_t t = 0;
  std::size_t ccx = 0;
  std::size_t rotations = 0;
  std::size_t two_qubit = 0;
  std::size_t non_clifford = 0;
  std::size_t measures = 0;
  std::size_t resets = 0;
  std::size_t depth = 0;
  std::size_t t_depth = 0;
  std::vector<bool> used;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> pairs;
};

class MirrorWalker {
 public:
  explicit MirrorWalker(const CircuitDecl& circ)
      : circ_(circ),
        qubit_level_(circ.num_qubits, 0),
        clbit_level_(circ.num_clbits, 0),
        t_level_(circ.num_qubits, 0) {
    out_.used.assign(circ.num_qubits, false);
  }

  MirrorCounts walk() {
    for (const Stmt& stmt : circ_.body) visit(stmt, {});
    return out_;
  }

 private:
  void visit(const Stmt& stmt, std::vector<std::size_t> guards) {
    if (const auto* iff = std::get_if<std::shared_ptr<IfStmt>>(&stmt)) {
      if ((*iff)->clbit.index < circ_.num_clbits) {
        guards.push_back((*iff)->clbit.index);
      }
      visit((*iff)->body, std::move(guards));
      return;
    }
    if (std::holds_alternative<BarrierStmt>(stmt)) {
      std::size_t sync = 0;
      std::size_t t_sync = 0;
      for (std::size_t q = 0; q < circ_.num_qubits; ++q) {
        sync = std::max(sync, qubit_level_[q]);
        t_sync = std::max(t_sync, t_level_[q]);
      }
      std::fill(qubit_level_.begin(), qubit_level_.end(), sync);
      std::fill(t_level_.begin(), t_level_.end(), t_sync);
      return;
    }
    if (std::holds_alternative<MeasureAllStmt>(stmt)) {
      if (circ_.num_clbits < circ_.num_qubits) return;  // ineffective
      std::size_t ready = 0;
      for (std::size_t q = 0; q < circ_.num_qubits; ++q) {
        ready = std::max(ready, qubit_level_[q]);
      }
      for (const std::size_t c : guards) {
        ready = std::max(ready, clbit_level_[c]);
      }
      const std::size_t layer = ready + 1;
      out_.depth = std::max(out_.depth, layer);
      out_.measures += circ_.num_qubits;
      for (std::size_t q = 0; q < circ_.num_qubits; ++q) {
        qubit_level_[q] = layer;
        clbit_level_[q] = layer;
        out_.used[q] = true;
      }
      return;
    }
    if (const auto* gate = std::get_if<GateStmt>(&stmt)) {
      ++out_.gates;
      const auto kind = LanguageRegistry::current().resolve_gate(gate->name);
      std::vector<std::size_t> qs;
      for (const RegRef& ref : gate->operands) {
        if (ref.index < circ_.num_qubits) qs.push_back(ref.index);
      }
      std::sort(qs.begin(), qs.end());
      qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
      bool is_t = false;
      if (kind) {
        const sim::GateInfo& info = sim::gate_info(*kind);
        is_t = *kind == sim::GateKind::kT || *kind == sim::GateKind::kTdg;
        if (is_t) ++out_.t;
        if (*kind == sim::GateKind::kCCX) ++out_.ccx;
        if (!info.clifford) {
          ++out_.non_clifford;
          if (info.num_params > 0) ++out_.rotations;
        }
        if (info.num_qubits == 2) {
          ++out_.two_qubit;
          if (qs.size() == 2) ++out_.pairs[{qs.front(), qs.back()}];
        }
      }
      schedule(qs, guards, is_t, /*writes_clbit=*/std::nullopt);
      return;
    }
    if (const auto* measure = std::get_if<MeasureStmt>(&stmt)) {
      if (measure->qubit.index >= circ_.num_qubits) return;
      ++out_.measures;
      schedule({measure->qubit.index}, guards, false,
               measure->clbit.index < circ_.num_clbits
                   ? std::optional<std::size_t>(measure->clbit.index)
                   : std::nullopt);
      return;
    }
    if (const auto* reset = std::get_if<ResetStmt>(&stmt)) {
      if (reset->qubit.index >= circ_.num_qubits) return;
      ++out_.resets;
      schedule({reset->qubit.index}, guards, false, std::nullopt);
      return;
    }
  }

  void schedule(const std::vector<std::size_t>& qs,
                const std::vector<std::size_t>& guards, bool is_t,
                std::optional<std::size_t> writes_clbit) {
    if (qs.empty()) return;
    std::size_t ready = 0;
    std::size_t t_in = 0;
    for (const std::size_t q : qs) {
      ready = std::max(ready, qubit_level_[q]);
      t_in = std::max(t_in, t_level_[q]);
      out_.used[q] = true;
    }
    for (const std::size_t c : guards) {
      ready = std::max(ready, clbit_level_[c]);
    }
    const std::size_t layer = ready + 1;
    const std::size_t t_out = t_in + (is_t ? 1 : 0);
    out_.depth = std::max(out_.depth, layer);
    out_.t_depth = std::max(out_.t_depth, t_out);
    for (const std::size_t q : qs) {
      qubit_level_[q] = layer;
      t_level_[q] = t_out;
    }
    if (writes_clbit) clbit_level_[*writes_clbit] = layer;
  }

  const CircuitDecl& circ_;
  std::vector<std::size_t> qubit_level_;
  std::vector<std::size_t> clbit_level_;
  std::vector<std::size_t> t_level_;
  MirrorCounts out_;
};

TEST(ResourceCrossCheck, EveryGoldTemplateMatchesExactEnumeration) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Program program = llm::gold_program(task);
    const CircuitDecl* entry = program.entry();
    ASSERT_NE(entry, nullptr);
    const MirrorCounts mirror = MirrorWalker(*entry).walk();
    const ResourceSummary engine = analysis::summarize_entry(program);
    const std::string name(llm::algorithm_name(id));
    ASSERT_TRUE(engine.computed) << name;
    EXPECT_EQ(engine.gate_count, mirror.gates) << name;
    EXPECT_EQ(engine.t_count, mirror.t) << name;
    EXPECT_EQ(engine.ccx_count, mirror.ccx) << name;
    EXPECT_EQ(engine.rotation_count, mirror.rotations) << name;
    EXPECT_EQ(engine.two_qubit_count, mirror.two_qubit) << name;
    EXPECT_EQ(engine.non_clifford_count, mirror.non_clifford) << name;
    EXPECT_EQ(engine.measure_count, mirror.measures) << name;
    EXPECT_EQ(engine.depth, mirror.depth) << name;
    EXPECT_EQ(engine.t_depth, mirror.t_depth) << name;
    EXPECT_LE(engine.t_depth, engine.depth) << name;
    EXPECT_EQ(engine.qubits_used,
              static_cast<std::size_t>(std::count(mirror.used.begin(),
                                                  mirror.used.end(), true)))
        << name;
    ASSERT_EQ(engine.two_qubit_pairs.size(), mirror.pairs.size()) << name;
    for (const analysis::TwoQubitPair& pair : engine.two_qubit_pairs) {
      const auto it = mirror.pairs.find({pair.a, pair.b});
      ASSERT_NE(it, mirror.pairs.end()) << name;
      EXPECT_EQ(pair.count, it->second) << name;
    }
  }
}

// ---------------------------------------------------------------------
// Engine unit tests
// ---------------------------------------------------------------------

TEST(ResourceEngine, UnconditionalCountsAreExact) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 2, c: 2) {
  h q[0];
  t q[0];
  cx q[0], q[1];
  tdg q[1];
  measure q[0] -> c[0];
  measure q[1] -> c[1];
}
)");
  ASSERT_TRUE(res.computed);
  EXPECT_EQ(res.t_count, (analysis::CostRange{2, 2}));
  EXPECT_EQ(res.two_qubit_count, (analysis::CostRange{1, 1}));
  EXPECT_EQ(res.gate_count, (analysis::CostRange{4, 4}));
  EXPECT_EQ(res.measure_count, (analysis::CostRange{2, 2}));
  // h,t serial on q0; cx joins both; tdg and the measures follow.
  EXPECT_EQ(res.depth, (analysis::CostRange{5, 5}));
  // t (layer 2) and tdg (after the cx) sit on one T-chain of length 2.
  EXPECT_EQ(res.t_depth, (analysis::CostRange{2, 2}));
  EXPECT_EQ(res.histogram.at("t").max + res.histogram.at("tdg").max, 2u);
  ASSERT_EQ(res.two_qubit_pairs.size(), 1u);
  EXPECT_EQ(res.two_qubit_pairs[0], (analysis::TwoQubitPair{0, 1, 1}));
}

TEST(ResourceEngine, GuardedOpsCountOnlyInUpperBound) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 1, c: 1) {
  h q[0];
  measure q[0] -> c[0];
  if (c[0] == 1) t q[0];
}
)");
  ASSERT_TRUE(res.computed);
  EXPECT_EQ(res.t_count, (analysis::CostRange{0, 1}));
  EXPECT_EQ(res.depth.min, 2u);
  EXPECT_EQ(res.depth.max, 3u);  // classical edge serialises the t
  EXPECT_EQ(res.t_depth, (analysis::CostRange{0, 1}));
}

TEST(ResourceEngine, AbstractReachabilityRefinesTheRange) {
  // c[0] is measured from |0>, so the abstract interpreter proves the
  // guard false: the t is excluded from both bounds.
  const Program program = parse_ok(R"(import qiskit;
circuit main(q: 1, c: 1) {
  measure q[0] -> c[0];
  if (c[0] == 1) t q[0];
}
)");
  const lint::ProgramFacts facts = lint::ProgramFacts::compute(program);
  const lint::abstract::AbstractFacts abstract =
      lint::abstract::AbstractFacts::compute(facts,
                                             LanguageRegistry::current());
  const ResourceFacts with = ResourceFacts::compute(
      facts, LanguageRegistry::current(), &abstract);
  const ResourceFacts without =
      ResourceFacts::compute(facts, LanguageRegistry::current());
  ASSERT_FALSE(with.circuits.empty());
  EXPECT_EQ(with.circuits[0].t_count, (analysis::CostRange{0, 0}));
  EXPECT_EQ(without.circuits[0].t_count, (analysis::CostRange{0, 1}));
}

TEST(ResourceEngine, BarrierSynchronisesWithoutCounting) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 2, c: 2) {
  h q[0];
  h q[0];
  barrier;
  h q[1];
  measure_all;
}
)");
  ASSERT_TRUE(res.computed);
  // Barrier lifts q[1]'s clock to q[0]'s: h q[1] lands on layer 3.
  EXPECT_EQ(res.depth, (analysis::CostRange{4, 4}));
  EXPECT_EQ(res.total_ops, (analysis::CostRange{4, 4}));  // no barrier
  EXPECT_EQ(res.measure_count, (analysis::CostRange{2, 2}));
}

TEST(ResourceEngine, IneffectiveMeasureAllIsANoOp) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 2, c: 1) {
  h q[0];
  measure_all;
}
)");
  ASSERT_TRUE(res.computed);
  EXPECT_EQ(res.measure_count, (analysis::CostRange{0, 0}));
  EXPECT_EQ(res.depth, (analysis::CostRange{1, 1}));
}

TEST(ResourceEngine, LifetimeRolesAndIdleGaps) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 4, c: 1) {
  h q[0];
  cx q[0], q[1];
  h q[1];
  reset q[1];
  h q[2];
  t q[2];
  t q[2];
  t q[2];
  t q[2];
  cx q[2], q[0];
  measure q[0] -> c[0];
}
)");
  ASSERT_TRUE(res.computed);
  ASSERT_EQ(res.qubits.size(), 4u);
  EXPECT_EQ(res.qubits[0].role, QubitLifetime::Role::kData);
  EXPECT_EQ(res.qubits[1].role, QubitLifetime::Role::kAncillaReleased);
  EXPECT_TRUE(res.qubits[1].released);
  EXPECT_EQ(res.qubits[2].role, QubitLifetime::Role::kAncillaDirty);
  EXPECT_EQ(res.qubits[3].role, QubitLifetime::Role::kUnused);
  EXPECT_EQ(res.qubits_used, 3u);
  // q[0]: h (layer 1), cx (2), then idle until cx q[2],q[0] at layer 6.
  EXPECT_EQ(res.qubits[0].max_idle_gap, 3u);
}

TEST(ResourceEngine, AlapNeverPrecedesAsapAndCriticalPathHasZeroSlack) {
  const CircuitResources res = entry_resources(R"(import qiskit;
circuit main(q: 3, c: 3) {
  h q[0];
  cx q[0], q[1];
  cx q[1], q[2];
  h q[2];
  measure q[2] -> c[2];
}
)");
  ASSERT_TRUE(res.computed);
  bool saw_zero_slack = false;
  for (const analysis::OpResource& op : res.ops) {
    if (op.asap_layer == 0) continue;
    EXPECT_GE(op.alap_layer, op.asap_layer);
    if (op.slack() == 0) saw_zero_slack = true;
  }
  EXPECT_TRUE(saw_zero_slack);
  // Every layer of the upper-bound schedule hosts at least one op.
  for (std::size_t layer = 1; layer < res.layer_width.size(); ++layer) {
    EXPECT_GE(res.layer_width[layer], 1u) << "empty layer " << layer;
  }
}

// ---------------------------------------------------------------------
// resource.* passes: positive and negative cases
// ---------------------------------------------------------------------

const char* const kReusableAncillaSource = R"(import qiskit;
circuit main(q: 3, c: 2) {
  h q[1];
  cx q[1], q[0];
  cx q[1], q[0];
  h q[1];
  reset q[1];
  h q[2];
  measure q[0] -> c[0];
  measure q[2] -> c[1];
}
)";

TEST(ResourcePasses, QubitReuseFiresWithFixit) {
  const AnalysisReport report = analyze_source(kReusableAncillaSource);
  const Diagnostic* diag = find_code(report, DiagCode::kQubitReuse);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kWarning);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_NE(diag->message.find("q[2]"), std::string::npos);
  EXPECT_NE(diag->message.find("q[1]"), std::string::npos);
}

TEST(ResourcePasses, QubitReuseSkipsMeasureAllCircuits) {
  // Same shape, but the output convention is measure_all's implicit
  // qubit -> clbit map, which a remap would permute.
  const AnalysisReport report = analyze_source(R"(import qiskit;
circuit main(q: 3, c: 3) {
  h q[1];
  cx q[1], q[0];
  cx q[1], q[0];
  h q[1];
  reset q[1];
  h q[2];
  measure_all;
}
)");
  EXPECT_FALSE(has_code(report, DiagCode::kQubitReuse));
}

TEST(ResourcePasses, QubitReuseIgnoresGuardedResets) {
  const AnalysisReport report = analyze_source(R"(import qiskit;
circuit main(q: 3, c: 2) {
  h q[1];
  measure q[1] -> c[0];
  if (c[0] == 1) reset q[1];
  h q[2];
  measure q[2] -> c[1];
}
)");
  EXPECT_FALSE(has_code(report, DiagCode::kQubitReuse));
}

TEST(ResourcePasses, QubitReuseCertifiedRoundTrip) {
  const std::string source = kReusableAncillaSource;
  const AnalysisReport report = analyze_source(source);
  ASSERT_TRUE(has_code(report, DiagCode::kQubitReuse));

  // Certify only the reuse fix-it: the injected identity pairs also
  // draw dataflow fix-its, whose removals would change the gate counts
  // this test pins down.
  std::vector<Diagnostic> reuse_diags;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == DiagCode::kQubitReuse) reuse_diags.push_back(d);
  }
  const verify::CertifiedFixIts certified =
      verify::certify_and_apply_fixits(source, reuse_diags);
  bool saw_reuse = false;
  for (const verify::FixItCertification& record : certified.records) {
    if (record.code != DiagCode::kQubitReuse) continue;
    saw_reuse = true;
    // The landing gate: a qubit-reuse fix-it may only apply with a
    // proved-equal certificate — never as an uncertified mutation.
    EXPECT_TRUE(record.applied) << record.detail;
    EXPECT_TRUE(record.certificate.proved_equal()) << record.detail;
  }
  ASSERT_TRUE(saw_reuse);

  // The patch really remapped: q[2] is gone, behaviour is preserved.
  EXPECT_EQ(certified.source.find("q[2]"), std::string::npos)
      << certified.source;
  const Program before = parse_ok(source);
  const Program after = parse_ok(certified.source);
  const double tvd = total_variation_distance(
      sim::exact_distribution(build_circuit(before)),
      sim::exact_distribution(build_circuit(after)));
  EXPECT_NEAR(tvd, 0.0, 1e-12);

  // Re-analysis of the patched source no longer reports the reuse.
  EXPECT_FALSE(has_code(analyze_source(certified.source),
                        DiagCode::kQubitReuse));

  // Proved-equal remap leaves every gate-class count untouched (it only
  // renames a wire).
  const ResourceSummary pre = analysis::summarize_entry(before);
  const ResourceSummary post = analysis::summarize_entry(after);
  EXPECT_EQ(post.gate_count, pre.gate_count);
  EXPECT_EQ(post.t_count, pre.t_count);
  EXPECT_EQ(post.two_qubit_count, pre.two_qubit_count);
  EXPECT_EQ(post.measure_count, pre.measure_count);
  EXPECT_EQ(post.qubits_used, pre.qubits_used - 1);
}

TEST(ResourcePasses, IdleQubitHotspotPositiveAndNegative) {
  const AnalysisReport hot = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 2) {
  h q[0];
  cx q[0], q[1];
  t q[1];
  t q[1];
  t q[1];
  t q[1];
  t q[1];
  t q[1];
  t q[1];
  t q[1];
  cx q[0], q[1];
  measure q[0] -> c[0];
}
)");
  const Diagnostic* diag = find_code(hot, DiagCode::kIdleQubitHotspot);
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->message.find("q[0]"), std::string::npos);

  const AnalysisReport cold = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 2) {
  h q[0];
  cx q[0], q[1];
  t q[1];
  cx q[0], q[1];
  measure q[0] -> c[0];
}
)");
  EXPECT_FALSE(has_code(cold, DiagCode::kIdleQubitHotspot));
}

TEST(ResourcePasses, UncomputedAncillaPositiveAndNegative) {
  const AnalysisReport dirty = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 1) {
  h q[0];
  cx q[0], q[1];
  measure q[0] -> c[0];
}
)");
  EXPECT_TRUE(has_code(dirty, DiagCode::kUncomputedAncilla));

  // Released (reset) ancilla: clean.
  const AnalysisReport released = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 1) {
  h q[0];
  cx q[0], q[1];
  reset q[1];
  measure q[0] -> c[0];
}
)");
  EXPECT_FALSE(has_code(released, DiagCode::kUncomputedAncilla));

  // No measurement anywhere: output convention unknown, stay quiet.
  const AnalysisReport unmeasured = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 1) {
  h q[0];
  cx q[0], q[1];
}
)");
  EXPECT_FALSE(has_code(unmeasured, DiagCode::kUncomputedAncilla));

  // Never entangled: a lone dirty scratch qubit is not flagged.
  const AnalysisReport lone = analyze_source(R"(import qiskit;
circuit main(q: 2, c: 1) {
  h q[0];
  h q[1];
  measure q[0] -> c[0];
}
)");
  EXPECT_FALSE(has_code(lone, DiagCode::kUncomputedAncilla));
}

TEST(ResourcePasses, DepthDominatingLayerPositiveAndNegative) {
  std::string serial = "import qiskit;\ncircuit main(q: 2, c: 2) {\n";
  for (int i = 0; i < 16; ++i) serial += "  t q[0];\n";
  serial += "  cx q[0], q[1];\n  measure q[0] -> c[0];\n}\n";
  const AnalysisReport report = analyze_source(serial);
  EXPECT_TRUE(has_code(report, DiagCode::kDepthDominatingLayer));

  std::string shallow = "import qiskit;\ncircuit main(q: 2, c: 2) {\n";
  for (int i = 0; i < 8; ++i) shallow += "  t q[0];\n";
  shallow += "  cx q[0], q[1];\n  measure q[0] -> c[0];\n}\n";
  EXPECT_FALSE(
      has_code(analyze_source(shallow), DiagCode::kDepthDominatingLayer));
}

TEST(ResourcePasses, DisabledByAnalyzerOption) {
  AnalyzerOptions options;
  options.resource_lints = false;
  const AnalysisReport report =
      analyze_source(kReusableAncillaSource, options);
  EXPECT_FALSE(has_code(report, DiagCode::kQubitReuse));
  EXPECT_FALSE(has_code(report, DiagCode::kIdleQubitHotspot));
  EXPECT_FALSE(has_code(report, DiagCode::kUncomputedAncilla));
  EXPECT_FALSE(has_code(report, DiagCode::kDepthDominatingLayer));
}

// ---------------------------------------------------------------------
// Fuzz extension: proved-equal rewrites vs. the resource lattice
// ---------------------------------------------------------------------

/// Inserts `lines` right after the circuit-opening "{" line.
std::string inject_after_open_brace(const std::string& source,
                                    const std::vector<std::string>& lines) {
  std::string out;
  bool injected = false;
  std::size_t start = 0;
  while (start <= source.size()) {
    const std::size_t end = source.find('\n', start);
    const std::string line = source.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    out += line;
    out += '\n';
    if (!injected && line.find('{') != std::string::npos) {
      injected = true;
      for (const std::string& extra : lines) {
        out += extra;
        out += '\n';
      }
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

TEST(ResourceFuzz, CertifiedRewritesKeepTheLatticeConsistent) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const std::string gold = print_program(llm::gold_program(task));
    const std::string source = inject_after_open_brace(
        gold, {"  h q[0];", "  h q[0];", "  s q[0];", "  sdg q[0];"});
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok()) << llm::algorithm_name(id);
    const AnalysisReport report = analyze(*parsed.program);
    const verify::CertifiedFixIts certified =
        verify::certify_and_apply_fixits(source, report.diagnostics);
    const std::string name(llm::algorithm_name(id));

    // Zero uncertified mutations: every applied preservation-claiming
    // fix-it carries a proved-equal certificate.
    for (const verify::FixItCertification& record : certified.records) {
      if (!verify::fixit_claims_preservation(record.code)) continue;
      if (!record.applied) continue;
      EXPECT_TRUE(record.certificate.proved_equal())
          << name << ": " << diag_code_name(record.code) << " applied "
          << "without a proof (" << record.detail << ")";
    }

    // The patched program's resource lattice stays consistent with the
    // proved-equal contract: gate work and depth never grow, and the
    // measurement interface (qubit count, measure sites) is untouched.
    const ParseResult patched = parse(certified.source);
    ASSERT_TRUE(patched.ok()) << name;
    const ResourceSummary before =
        analysis::summarize_entry(*parsed.program);
    const ResourceSummary after =
        analysis::summarize_entry(*patched.program);
    ASSERT_TRUE(before.computed) << name;
    ASSERT_TRUE(after.computed) << name;
    EXPECT_LE(after.gate_count, before.gate_count) << name;
    EXPECT_LE(after.depth, before.depth) << name;
    EXPECT_EQ(after.qubits, before.qubits) << name;
    EXPECT_EQ(after.measure_count, before.measure_count) << name;
    EXPECT_EQ(after.t_count, before.t_count) << name;
  }
}

}  // namespace
}  // namespace qcgen::qasm
