// Request-lifecycle tests: deadline propagation, cooperative
// cancellation and per-site circuit breakers in the serving layer.
//
// The contracts under test: deadlines and cancellations resolve as
// structured outcomes (never hung workers or discarded exceptions);
// breaker verdicts and transition logs are bit-identical at any worker
// thread count; a cancelled single-flight cache compute never publishes;
// and Server destruction is safe even when drain() itself faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "common/cache/cache.hpp"
#include "common/cancel.hpp"
#include "common/failpoint.hpp"
#include "common/trace.hpp"
#include "eval/suite.hpp"
#include "serve/breaker.hpp"
#include "serve/report.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

using namespace qcgen;

namespace {

std::vector<eval::TestCase> small_catalog() {
  const auto full = eval::semantic_suite();
  return {full.begin(), full.begin() + 3};
}

serve::Server::Options lifecycle_options(std::size_t threads) {
  serve::Server::Options options;
  options.technique =
      agents::TechniqueConfig::with_rag(llm::ModelProfile::kStarCoder3B);
  options.technique.max_passes = 2;
  agents::QecDecoderAgent::Options qec;
  qec.trials = 100;
  options.qec = qec;
  options.device = agents::DeviceTopology::grid(5, 5);
  options.admission = serve::AdmissionOptions::unlimited();
  options.threads = threads;
  options.seed = 314;
  return options;
}

/// Deterministic digest of one result's lifecycle-relevant fields.
std::string lifecycle_fingerprint(const serve::RequestResult& result) {
  std::string out(serve::request_outcome_name(result.outcome));
  out += '|' + result.case_id + '|' + result.failure_site;
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "|%.9f", result.budget_consumed_units);
  out += buffer;
  out += "|sc:";
  for (const std::string& site : result.breaker_short_circuits) {
    out += site + ',';
  }
  out += "|probe:";
  for (const std::string& site : result.breaker_probes) out += site + ',';
  out += "|degr:";
  for (const auto& event : result.pipeline.degradations) {
    out += event.stage + '>' + event.to + '@' + event.site + ',';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// DeadlineBudget / CancelScope primitives

TEST(DeadlineBudget, ChargesTightensAndReportsPressure) {
  cancel::DeadlineBudget budget(10.0);
  EXPECT_TRUE(budget.limited());
  EXPECT_FALSE(budget.exhausted());
  budget.charge(4.0);
  EXPECT_DOUBLE_EQ(budget.consumed(), 4.0);
  EXPECT_DOUBLE_EQ(budget.pressure(), 0.4);
  // Tighten to consumed + 1: a further 2-unit charge exhausts it.
  budget.tighten(1.0);
  EXPECT_DOUBLE_EQ(budget.total(), 5.0);
  budget.charge(2.0);
  EXPECT_TRUE(budget.exhausted());
  // Tighten never loosens an existing limit.
  budget.tighten(100.0);
  EXPECT_TRUE(budget.exhausted());
}

TEST(DeadlineBudget, UnlimitedUntilTightened) {
  cancel::DeadlineBudget budget;
  EXPECT_FALSE(budget.limited());
  budget.charge(1000.0);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_DOUBLE_EQ(budget.pressure(), 0.0);
  // tighten(0) is the "cancel the rest" drain path: exhausted at once.
  budget.tighten(0.0);
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.exhausted());
}

TEST(CancelScope, CheckpointThrowsStructuredCancelledError) {
  cancel::CancelSource source;
  cancel::DeadlineBudget budget(1.0);
  cancel::CancelScope scope(source.token(), &budget);
  EXPECT_NO_THROW(cancel::checkpoint("stage.alpha"));
  // Exhaust the budget: the charge that crosses the line throws, with
  // the charging site attributed.
  try {
    cancel::charge("stage.beta", 2.0);
    FAIL() << "charge past the deadline must throw";
  } catch (const cancel::CancelledError& error) {
    EXPECT_EQ(error.cause(), cancel::Cause::kDeadlineExceeded);
    EXPECT_EQ(error.site(), "stage.beta");
  }
  // An explicit cancel wins over the (already exhausted) budget.
  source.request_cancel();
  try {
    cancel::checkpoint("stage.gamma");
    FAIL() << "checkpoint after cancel must throw";
  } catch (const cancel::CancelledError& error) {
    EXPECT_EQ(error.cause(), cancel::Cause::kCancelled);
    EXPECT_EQ(error.site(), "stage.gamma");
  }
}

TEST(CancelScope, RestoresPreviousBindingOnExit) {
  cancel::DeadlineBudget outer_budget(50.0);
  cancel::CancelScope outer(cancel::CancellationToken(), &outer_budget);
  {
    cancel::DeadlineBudget inner_budget(5.0);
    cancel::CancelScope inner(cancel::CancellationToken(), &inner_budget);
    EXPECT_EQ(cancel::current_budget(), &inner_budget);
  }
  EXPECT_EQ(cancel::current_budget(), &outer_budget);
}

// ---------------------------------------------------------------------------
// Single-flight cache x cancellation

TEST(Cancellation, CancelledComputeNeverPublishes) {
  cache::CacheOptions options;
  options.name = "test";
  cache::Cache<int> cache(options);

  // A pre-cancelled scope: the compute's checkpoint throws before a
  // value exists, and the single-flight placeholder must unpublish.
  cancel::CancelSource source;
  source.request_cancel();
  {
    cancel::CancelScope scope(source.token(), nullptr);
    EXPECT_THROW(cache.get_or_compute(42, [] {
      cancel::checkpoint("compute");
      return 1;  // unreachable
    }),
                 cancel::CancelledError);
  }
  // The loser published nothing: a fresh lookup recomputes (second
  // miss), and only the successful value is ever observable.
  const auto value = cache.get_or_compute(42, [] { return 7; });
  EXPECT_EQ(*value, 7);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Server lifecycle outcomes

TEST(ServerLifecycle, TightDeadlineYieldsStructuredOutcome) {
  const auto catalog = small_catalog();
  auto options = lifecycle_options(2);
  // Below the generate-stage cost (1.0): every request exceeds its
  // deadline at the first post-generate charge.
  options.default_deadline_units = 0.5;
  serve::Server server(options, catalog);
  serve::Session session(server, 1);
  std::vector<std::future<serve::RequestResult>> futures;
  for (std::uint64_t id = 0; id < 4; ++id) {
    futures.push_back(session.submit(id, catalog[id % catalog.size()], 0.0));
  }
  server.drain();
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_EQ(result.outcome, serve::RequestOutcome::kDeadlineExceeded);
    EXPECT_EQ(result.failure_site, "pipeline.generate");
    EXPECT_DOUBLE_EQ(result.deadline_units, 0.5);
    EXPECT_GE(result.budget_consumed_units, 0.5);
  }
  EXPECT_EQ(server.stats().deadline_exceeded, 4u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(ServerLifecycle, CancelBeforeSubmitIsBornCancelled) {
  const auto catalog = small_catalog();
  serve::Server server(lifecycle_options(2), catalog);
  serve::Session session(server, 1);
  server.cancel(0);  // before the request even exists
  auto cancelled = session.submit(0, catalog[0], 0.0);
  auto healthy = session.submit(1, catalog[1], 0.0);
  server.drain();
  const auto result = cancelled.get();
  EXPECT_EQ(result.outcome, serve::RequestOutcome::kCancelled);
  EXPECT_EQ(result.failure_site, "serve.request");
  EXPECT_EQ(healthy.get().outcome, serve::RequestOutcome::kCompleted);
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServerLifecycle, BoundedDrainResolvesEveryOutcome) {
  const auto catalog = small_catalog();
  serve::Server server(lifecycle_options(2), catalog);
  serve::Session session(server, 1);
  std::vector<std::future<serve::RequestResult>> futures;
  constexpr std::uint64_t kRequests = 8;
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    futures.push_back(session.submit(id, catalog[id % catalog.size()], 0.0));
  }
  // Zero extra budget: anything not already past its last checkpoint is
  // deadline-cancelled, but every future still resolves and the outcome
  // counts conserve.
  server.drain(0.0);
  for (auto& future : futures) future.get();
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed + stats.failed + stats.deadline_exceeded +
                stats.cancelled + stats.shed,
            kRequests);
}

#if QCGEN_FAILPOINTS_ENABLED

TEST(ServerLifecycle, DestructionContainsFaultingDrain) {
  const auto catalog = small_catalog();
  const auto scenario = std::make_shared<const failpoint::Scenario>(
      failpoint::Scenario::parse("serve.drain=error(1.0)"));
  failpoint::Injector injector(scenario, /*seed=*/1);
  trace::TraceSink sink(/*keep_events=*/false);
  {
    trace::SinkScope sink_scope(&sink);
    failpoint::InjectorScope injector_scope(&injector);
    serve::Server server(lifecycle_options(2), catalog);
    serve::Session session(server, 1);
    auto future = session.submit(0, catalog[0], 0.0);
    // No explicit drain: the destructor's drain() hits the armed fault
    // and must contain it instead of terminating the process.
    future.wait();
  }
  const auto counters = sink.summary().counters;
  const auto it = counters.find("serve.drain_failures");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second, 1);
}

// ---------------------------------------------------------------------------
// Circuit breakers

TEST(Breaker, OpensUnderSustainedFaultsAtAnyThreadCount) {
  const auto catalog = small_catalog();
  auto run = [&](std::size_t threads) {
    auto options = lifecycle_options(threads);
    options.chaos_scenario =
        "qec.decode=error(1.0);retrieval.query=error(1.0)";
    options.breaker.enabled = true;
    options.breaker.failure_threshold = 2;
    serve::Server server(options, catalog);
    serve::Session session(server, 1);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 12; ++id) {
      futures.push_back(session.submit(
          id, catalog[id % catalog.size()], 0.1 * static_cast<double>(id)));
    }
    server.drain();
    std::vector<serve::RequestResult> results;
    for (auto& future : futures) results.push_back(future.get());
    return std::make_pair(std::move(results), server.breaker_transitions());
  };

  const auto [serial, serial_edges] = run(1);
  const auto [parallel, parallel_edges] = run(8);

  // Bit-identical verdicts, outcomes and transition logs at any thread
  // count: the whole point of deciding breakers in virtual time.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(lifecycle_fingerprint(serial[i]),
              lifecycle_fingerprint(parallel[i]))
        << "request " << i;
  }
  EXPECT_EQ(serial_edges, parallel_edges);

  // Sustained 100% failure on both degradable sites trips both breakers.
  const auto opened = [&](const char* site) {
    return std::any_of(serial_edges.begin(), serial_edges.end(),
                       [&](const serve::BreakerTransition& edge) {
                         return edge.site == site &&
                                edge.to == serve::BreakerState::kOpen;
                       });
  };
  EXPECT_TRUE(opened("qec.decode"));
  EXPECT_TRUE(opened("retrieval.query"));

  // Once open, later requests short-circuit mid-ladder: they skip the
  // failing sites (QEC planning off, rag off) yet still complete.
  bool saw_short_circuited_completion = false;
  for (const auto& result : serial) {
    const auto& sc = result.breaker_short_circuits;
    if (result.outcome == serve::RequestOutcome::kCompleted &&
        std::find(sc.begin(), sc.end(), "qec.decode") != sc.end() &&
        std::find(sc.begin(), sc.end(), "retrieval.query") != sc.end()) {
      EXPECT_FALSE(result.pipeline.qec.has_value());
      saw_short_circuited_completion = true;
    }
  }
  EXPECT_TRUE(saw_short_circuited_completion);
}

TEST(Breaker, AbortedRequestsAreNoSignal) {
  // A request that never exercised a site must not vouch for it: with
  // failure_threshold consecutive failures interleaved by aborted
  // (deadline-exceeded) requests, the breaker still opens.
  serve::BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 3;
  serve::BreakerBoard board(options, {"qec.decode"});
  double vt = 0.0;
  for (std::uint64_t id = 0; id < 6; ++id) {
    board.register_request(id, vt, vt + 0.5);
    vt += 1.0;
  }
  for (std::uint64_t id = 0; id < 6; ++id) {
    (void)board.decide(id);
    if (id % 2 == 0) {
      board.report(id, {"qec.decode"}, {});  // exercised, failed
    } else {
      board.report(id, {}, {});  // aborted before the site: no-signal
    }
  }
  // Three failures with interleaved no-signal reports: breaker open.
  EXPECT_EQ(board.state("qec.decode"), serve::BreakerState::kOpen);
}

TEST(Breaker, SuccessEvidenceResetsTheStreak) {
  serve::BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 3;
  serve::BreakerBoard board(options, {"qec.decode"});
  double vt = 0.0;
  for (std::uint64_t id = 0; id < 6; ++id) {
    board.register_request(id, vt, vt + 0.5);
    vt += 1.0;
  }
  for (std::uint64_t id = 0; id < 6; ++id) {
    (void)board.decide(id);
    if (id == 2) {
      board.report(id, {}, {"qec.decode"});  // success: streak resets
    } else {
      board.report(id, {"qec.decode"}, {});
    }
  }
  // fail, fail, success, fail, fail, fail: exactly one open, at the end.
  const auto edges = board.transitions();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(edges[0].request_id, 5u);
}

TEST(Breaker, HalfOpenProbesCloseAfterCooldown) {
  serve::BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 2;
  options.cooldown_vt = 1.0;
  options.half_open_successes = 2;
  options.probe_probability = 1.0;  // every post-cooldown request probes
  options.seed = 7;
  serve::BreakerBoard board(options, {"qec.decode"});
  double vt = 0.0;
  for (std::uint64_t id = 0; id < 6; ++id) {
    board.register_request(id, vt, vt + 0.5);
    vt += 1.0;
  }
  // Two failures open it; after the 1vt cooldown every arrival probes,
  // and two probe successes close it again.
  std::vector<bool> probed;
  for (std::uint64_t id = 0; id < 6; ++id) {
    const auto verdicts = board.decide(id);
    probed.push_back(verdicts.at("qec.decode").probing);
    if (id < 2) {
      board.report(id, {"qec.decode"}, {});
    } else {
      board.report(id, {}, {"qec.decode"});
    }
  }
  EXPECT_EQ(board.state("qec.decode"), serve::BreakerState::kClosed);
  EXPECT_TRUE(std::any_of(probed.begin(), probed.end(),
                          [](bool p) { return p; }));
  // closed -> open -> half-open -> closed, in virtual-time order.
  const auto edges = board.transitions();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(edges[1].to, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(edges[2].to, serve::BreakerState::kClosed);
  EXPECT_LE(edges[0].vt, edges[1].vt);
  EXPECT_LE(edges[1].vt, edges[2].vt);
}

TEST(Breaker, LifecycleSummaryIsThreadCountInvariant) {
  const auto catalog = small_catalog();
  auto run = [&](std::size_t threads) {
    auto options = lifecycle_options(threads);
    options.chaos_scenario = "qec.decode=error(1.0)";
    options.breaker.enabled = true;
    options.default_deadline_units = 12.0;
    serve::Server server(options, catalog);
    serve::Session session(server, 1);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 10; ++id) {
      futures.push_back(session.submit(
          id, catalog[id % catalog.size()], 0.2 * static_cast<double>(id)));
    }
    server.drain();
    std::vector<serve::RequestResult> results;
    for (auto& future : futures) results.push_back(future.get());
    return serve::LifecycleSummary::from("mix", 12.0, server, results)
        .to_json()
        .dump(0);
  };
  EXPECT_EQ(run(1), run(8));
}

#endif  // QCGEN_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Breakers compose invisibly with healthy traffic

TEST(Breaker, HealthyTrafficIsIdenticalWithBreakersOn) {
  const auto catalog = small_catalog();
  auto run = [&](bool breakers) {
    auto options = lifecycle_options(2);
    options.cache.enabled = true;
    options.breaker.enabled = breakers;
    serve::Server server(options, catalog);
    serve::Session session(server, 1);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 9; ++id) {
      futures.push_back(session.submit(
          id, catalog[id % catalog.size()], 0.1 * static_cast<double>(id)));
    }
    server.drain();
    std::vector<std::string> prints;
    for (auto& future : futures) {
      prints.push_back(lifecycle_fingerprint(future.get()));
    }
    return prints;
  };
  const auto with_breakers = run(true);
  const auto without = run(false);
  ASSERT_EQ(with_breakers.size(), without.size());
  for (std::size_t i = 0; i < with_breakers.size(); ++i) {
    EXPECT_EQ(with_breakers[i], without[i]) << "request " << i;
    // Healthy traffic never short-circuits.
    EXPECT_EQ(with_breakers[i].find("|sc:|"), with_breakers[i].find("|sc:"))
        << "request " << i;
  }
}
