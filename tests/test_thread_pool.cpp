// Tests for the work-stealing trial scheduler (common/thread_pool.hpp).

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qcgen {
namespace {

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SingleWorkerPoolIsValid) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, UnevenTaskCostsStillComplete) {
  // Mimics the eval workload: most trials are cheap, a few are long
  // (multi-pass repair); stealing must keep all indices covered.
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  pool.parallel_for(64, [&done](std::size_t i) {
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64u);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(32,
                        [&completed](std::size_t i) {
                          if (i == 7) throw std::runtime_error("trial 7 died");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Remaining indices still ran: the pool is reusable after a failure.
  EXPECT_EQ(completed.load(), 31u);
  std::atomic<std::size_t> again{0};
  pool.parallel_for(8, [&again](std::size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 8u);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexDeterministically) {
  // Multiple indices fail on every run; the surfaced exception must be
  // the lowest-index one regardless of which worker lost the race. The
  // later index is made fast (more likely to land first in a racy
  // first-wins implementation) to give a regression a chance to show.
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i == 60) throw std::runtime_error("index 60");
        if (i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          throw std::runtime_error("index 3");
        }
      });
      FAIL() << "parallel_for did not throw";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "index 3") << "round " << round;
    }
  }
}

TEST(ThreadPool, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ManySmallBatchesReuseThePool) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(10, [&count](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    total += count.load();
  }
  EXPECT_EQ(total, 200u);
}

TEST(ThreadPool, OversubscribedPoolMatchesSerialSum) {
  // More workers than hardware threads (nproc may be 1 in CI): results
  // must not depend on the scheduling interleaving.
  ThreadPool pool(8);
  std::vector<std::size_t> out(257, 0);
  pool.parallel_for(out.size(), [&out](std::size_t i) { out[i] = i * i; });
  std::size_t sum = std::accumulate(out.begin(), out.end(), std::size_t{0});
  std::size_t expect = 0;
  for (std::size_t i = 0; i < out.size(); ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

}  // namespace
}  // namespace qcgen
