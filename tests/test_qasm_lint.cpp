// Tests for the lint-pass framework: the pass registry, per-pass
// configuration, the dataflow passes (positive and negative cases for
// each), and fix-it round-trips (applying the fix-it must make the
// diagnostic disappear on re-analysis).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>

#include "llm/tasks.hpp"
#include "llm/templates.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/builder.hpp"
#include "qasm/lint/abstract/interpreter.hpp"
#include "qasm/lint/driver.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "sim/statevector.hpp"

namespace qcgen::qasm {
namespace {

AnalysisReport analyze_source(const std::string& source,
                              const AnalyzerOptions& options = {}) {
  const ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok()) << format_error_trace(parsed.diagnostics);
  return analyze(*parsed.program, LanguageRegistry::current(), options);
}

bool has_code(const AnalysisReport& report, DiagCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// Applies every fix-it and re-analyzes the patched source.
AnalysisReport fix_and_reanalyze(const std::string& source,
                                 const AnalysisReport& report,
                                 std::size_t expect_applied) {
  const FixItResult fixed = apply_fixits(source, report.diagnostics);
  EXPECT_EQ(fixed.applied, expect_applied) << "patched:\n" << fixed.source;
  return analyze_source(fixed.source);
}

// ---------------------------------------------------------------------
// Registry / driver / config
// ---------------------------------------------------------------------

TEST(LintRegistry, BuiltinCarriesAllPasses) {
  const auto& registry = lint::PassRegistry::builtin();
  const char* expected[] = {
      "core.imports",           "core.structure",
      "core.gates",             "core.measurement",
      "core.unused-qubit",      "dataflow.clbit-liveness",
      "dataflow.gate-after-measure", "dataflow.double-measure",
      "dataflow.dead-code",     "dataflow.redundant-pair",
      "abstract.deterministic-measurement",
      "abstract.unreachable-conditional",
      "abstract.redundant-reset",
      "abstract.trivial-gate",
      "abstract.topology-conformance",
  };
  for (const char* id : expected) {
    const lint::LintPass* pass = registry.find(id);
    ASSERT_NE(pass, nullptr) << id;
    EXPECT_EQ(pass->id(), id);
    EXPECT_FALSE(pass->description().empty()) << id;
  }
  EXPECT_EQ(registry.find("core.nonexistent"), nullptr);
  EXPECT_GE(registry.passes().size(), std::size(expected));
}

TEST(LintDriver, DiagnosticsCarryPassIds) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }");
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "dataflow.redundant-pair");
}

TEST(LintDriver, DisabledGroupSuppressesDataflowPasses) {
  const std::string source =
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }";
  const ParseResult parsed = parse(source);
  ASSERT_TRUE(parsed.ok());
  lint::LintConfig config;
  config.disabled_groups.insert("dataflow.");
  const auto report = lint::run_passes(*parsed.program,
                                       LanguageRegistry::current(),
                                       lint::PassRegistry::builtin(), config);
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
  // An explicit per-pass entry wins over the group disable.
  config.passes["dataflow.redundant-pair"].enabled = true;
  const auto restored = lint::run_passes(*parsed.program,
                                         LanguageRegistry::current(),
                                         lint::PassRegistry::builtin(), config);
  EXPECT_TRUE(has_code(restored, DiagCode::kRedundantGatePair));
}

TEST(LintDriver, SeverityOverrides) {
  const std::string source =
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }";
  const ParseResult parsed = parse(source);
  ASSERT_TRUE(parsed.ok());
  lint::LintConfig config;
  config.passes["dataflow.redundant-pair"].severity = Severity::kError;
  const auto report = lint::run_passes(*parsed.program,
                                       LanguageRegistry::current(),
                                       lint::PassRegistry::builtin(), config);
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kError);
  // Per-code override beats the pass-level one.
  config.code_severity[DiagCode::kRedundantGatePair] = Severity::kWarning;
  const auto again = lint::run_passes(*parsed.program,
                                      LanguageRegistry::current(),
                                      lint::PassRegistry::builtin(), config);
  EXPECT_EQ(find_code(again, DiagCode::kRedundantGatePair)->severity,
            Severity::kWarning);
}

TEST(LintDriver, EmitFixitsOffStripsPatches) {
  AnalyzerOptions options;
  options.emit_fixits = false;
  const auto report = analyze_source(
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n",
      options);
  for (const auto& d : report.diagnostics) {
    EXPECT_FALSE(d.fixit.has_value()) << d.message;
  }
}

TEST(LintDriver, AnalyzerOptionCanDisableDataflow) {
  AnalyzerOptions options;
  options.dataflow_lints = false;
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; x q[0]; }",
      options);
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

// ---------------------------------------------------------------------
// dataflow.gate-after-measure
// ---------------------------------------------------------------------

TEST(GateAfterMeasure, FlagsUnconditionalGateAfterMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; x q[0]; measure q[1] -> c[1]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, GuardedCorrectionIsExempt) {
  // The teleportation idiom: measure, then conditionally correct.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; if (c[0] == 1) x q[1]; "
      "measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, ResetRearmsTheQubit) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; x q[0]; "
      "measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, OtherQubitsUnaffected) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { measure q[0] -> c[0]; "
      "h q[1]; measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

// ---------------------------------------------------------------------
// dataflow.double-measure
// ---------------------------------------------------------------------

TEST(DoubleMeasure, FlagsBackToBackMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; measure q[0] -> c[1]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDoubleMeasurement));
  // Different target clbits: flagged, but no delete fix-it (removal
  // would leave c[1] unwritten).
  EXPECT_FALSE(
      find_code(report, DiagCode::kDoubleMeasurement)->fixit.has_value());
}

TEST(DoubleMeasure, SameClbitCarriesDeleteFixit) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDoubleMeasurement);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDoubleMeasurement));
}

TEST(DoubleMeasure, InterveningResetOrGateIsFine) {
  const auto with_reset = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(with_reset, DiagCode::kDoubleMeasurement));
  const auto with_gate = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; h q[0]; "
      "measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(with_gate, DiagCode::kDoubleMeasurement));
}

// ---------------------------------------------------------------------
// dataflow.clbit-liveness
// ---------------------------------------------------------------------

TEST(ClbitLiveness, StaleWhenWriteComesLater) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { if (c[0] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kConditionOnStaleClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
}

TEST(ClbitLiveness, UnwrittenWhenNoWriteExists) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { if (c[1] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit));
}

TEST(ClbitLiveness, ReadAfterWriteIsClean) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { measure q[0] -> c[0]; "
      "if (c[0] == 1) x q[1]; measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
}

// ---------------------------------------------------------------------
// dataflow.dead-code
// ---------------------------------------------------------------------

TEST(DeadCode, FlagsGateWithNoPathToMeasurement) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 1) {\n"
      "  h q[0];\n"
      "  x q[1];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeadOperation);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->line, 4);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeadOperation));
}

TEST(DeadCode, EntanglementPropagatesLiveness) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 1) { h q[0]; "
      "cx q[0], q[1]; measure q[1] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, ResetSeversThePast) {
  // The h is wiped out by the unconditional reset before measurement.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; reset q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, SkipsCircuitsWithoutMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kNoMeasurement));
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, ReportCountIsCapped) {
  // 40 dead gates on q[1], each on its own line (the driver dedupes
  // identical same-line diagnostics); the pass caps per-circuit reports
  // at 16 and appends one summary diagnostic.
  std::string source = "import qiskit;\ncircuit main(q: 2, c: 1) {\n";
  for (int i = 0; i < 40; ++i) source += "x q[1];\n";
  source += "measure q[0] -> c[0];\n}\n";
  const auto report = analyze_source(source);
  const auto dead = std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == DiagCode::kDeadOperation; });
  EXPECT_EQ(dead, 17);  // 16 individual + 1 summary
}

// ---------------------------------------------------------------------
// dataflow.redundant-pair
// ---------------------------------------------------------------------

TEST(RedundantPair, FlagsAdjacentSelfInversePair) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->line_begin, 3);
  EXPECT_EQ(diag->fixit->line_end, 4);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, BarrierBreaksAdjacency) {
  // The DJ constant-oracle shape: h ... barrier ... h is deliberate.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; barrier; "
      "h q[0]; measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, InterleavedOperandBreaksAdjacency) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[0], q[1]; "
      "x q[1]; cx q[0], q[1]; measure_all; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, OperandOrderMattersForCx) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[0], q[1]; "
      "cx q[1], q[0]; measure_all; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, CzIsOperandSymmetric) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cz q[0], q[1]; "
      "cz q[1], q[0]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, NonSelfInverseGatesAreFine) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { t q[0]; t q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, ResolvesAliasesBeforeComparing) {
  // cnot and cx are the same gate; the pair still cancels.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cnot q[0], q[1]; "
      "cx q[0], q[1]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kRedundantGatePair));
}

// ---------------------------------------------------------------------
// Fix-its on the core passes
// ---------------------------------------------------------------------

TEST(CoreFixits, DeprecatedImportReplacement) {
  const std::string source =
      "import qiskit;\n"
      "import qiskit.execute;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeprecatedImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->line_begin, 2);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedImport));
  EXPECT_TRUE(fixed.ok());
}

TEST(CoreFixits, UnknownImportDeletion) {
  const std::string source =
      "import qiskit;\n"
      "import made.up.module;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kUnknownImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kUnknownImport));
}

TEST(CoreFixits, MissingImportInsertion) {
  const std::string source =
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kMissingQiskitImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_TRUE(diag->fixit->is_insertion());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kMissingQiskitImport));
}

TEST(CoreFixits, DeprecatedAliasRename) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 2) {\n"
      "  h q[0];\n"
      "  cnot q[0], q[1];\n"
      "  measure_all;\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeprecatedGateAlias);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_NE(diag->fixit->replacement.find("cx"), std::string::npos);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedGateAlias));
}

// ---------------------------------------------------------------------
// Fix-it application mechanics
// ---------------------------------------------------------------------

TEST(FixItApply, GuardRefusesMismatchedLines) {
  const FixIt fix{2, 2, "import qiskit.primitives;", "qiskit.execute"};
  EXPECT_FALSE(apply_fixit("line one\nline two\n", fix).has_value());
  EXPECT_TRUE(
      apply_fixit("line one\nimport qiskit.execute;\n", fix).has_value());
}

TEST(FixItApply, RangeChecks) {
  EXPECT_FALSE(apply_fixit("only\n", FixIt{0, 0, "x", ""}).has_value());
  EXPECT_FALSE(apply_fixit("only\n", FixIt{1, 9, "x", ""}).has_value());
  // Insertion past the end appends.
  const auto appended = apply_fixit("only\n", FixIt{2, 0, "tail", ""});
  ASSERT_TRUE(appended.has_value());
  EXPECT_EQ(*appended, "only\ntail\n");
}

TEST(FixItApply, MultipleFixitsApplyBottomUp) {
  // Deprecated import (line 2) + redundant pair (lines 4-5): both must
  // apply in one apply_fixits call without line-number skew.
  const std::string source =
      "import qiskit;\n"
      "import qiskit.execute;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const auto fixed = fix_and_reanalyze(source, report, 2);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedImport));
  EXPECT_FALSE(has_code(fixed, DiagCode::kRedundantGatePair));
  EXPECT_TRUE(fixed.ok());
}

// ---------------------------------------------------------------------
// Abstract interpretation: stabilizer-domain lints
// ---------------------------------------------------------------------

TEST(AbstractLint, DeterministicMeasurementPositive) {
  const std::string source =
      "import qiskit; circuit main(q: 1, c: 1) { x q[0]; "
      "measure q[0] -> c[0]; }";
  const auto report = analyze_source(source);
  const Diagnostic* diag =
      find_code(report, DiagCode::kDeterministicMeasurement);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kWarning);
  EXPECT_EQ(diag->pass_id, "abstract.deterministic-measurement");
  EXPECT_NE(diag->message.find("always 1"), std::string::npos);
  EXPECT_FALSE(diag->fixit.has_value());  // informational, nothing to patch

  // The underlying fact: the interpreter proved the outcome is |1>.
  const ParseResult parsed = parse(source);
  ASSERT_TRUE(parsed.ok());
  const auto facts = lint::ProgramFacts::compute(*parsed.program);
  const auto abs =
      lint::abstract::AbstractFacts::compute(facts,
                                             LanguageRegistry::current());
  ASSERT_EQ(abs.circuits.size(), 1u);
  ASSERT_TRUE(abs.circuits[0].computed);
  const auto& measure_fact = abs.circuits[0].ops.back();
  EXPECT_TRUE(measure_fact.has_outcome);
  EXPECT_EQ(measure_fact.outcome, sim::SignBit::kOne);
}

TEST(AbstractLint, RandomMeasurementNotFlagged) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kDeterministicMeasurement));
}

TEST(AbstractLint, BellAndGhzMakeNoDeterministicClaim) {
  // Entangled outcomes are correlated but random; claiming a constant
  // would be unsound, so the interpreter must stay silent.
  for (const llm::AlgorithmId id :
       {llm::AlgorithmId::kBellPair, llm::AlgorithmId::kGhz}) {
    llm::TaskSpec task;
    task.algorithm = id;
    const auto report =
        analyze_source(print_program(llm::gold_program(task)));
    EXPECT_FALSE(has_code(report, DiagCode::kDeterministicMeasurement))
        << llm::algorithm_name(id);
  }
}

TEST(AbstractLint, DeutschJozsaConstantOracleProvedConstant) {
  // DJ with a constant oracle is all-Clifford and deterministic: the
  // input register provably reads back |0...0>.
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kDeutschJozsa;  // default: constant
  const auto report = analyze_source(print_program(llm::gold_program(task)));
  const Diagnostic* diag =
      find_code(report, DiagCode::kDeterministicMeasurement);
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->message.find("always 0"), std::string::npos);
}

TEST(AbstractLint, NonCliffordGateWidensToUnknown) {
  // h t h is genuinely random from |0>; more importantly the t must
  // widen the qubit so no claim survives, even though the surrounding
  // gates are Clifford.
  const auto hth = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; t q[0]; h q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(hth, DiagCode::kDeterministicMeasurement));
  // ry(0) is the identity, but the domain widens on the *gate kind*, not
  // the angle — no claim, by design (soundness beats precision).
  const auto ry = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { ry(0) q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(ry, DiagCode::kDeterministicMeasurement));
}

TEST(AbstractLint, TrivialControlledGateFlaggedAndFixable) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 2) {\n"
      "  cx q[0], q[1];\n"
      "  h q[0];\n"
      "  measure_all;\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kTrivialControlledGate);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "abstract.trivial-gate");
  EXPECT_EQ(diag->line, 3);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->guard, "cx");
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kTrivialControlledGate));
}

TEST(AbstractLint, ActiveControlNotFlagged) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }");
  EXPECT_FALSE(has_code(report, DiagCode::kTrivialControlledGate));
}

TEST(AbstractLint, SymmetricDiagonalGateTrivialOnEitherOperand) {
  // cz is diagonal and symmetric: q[1] still being |0> makes it trivial
  // even though the first operand is in superposition.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cz q[0], q[1]; "
      "h q[1]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kTrivialControlledGate));
}

TEST(AbstractLint, RedundantResetFlaggedAndFixable) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  reset q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantReset);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "abstract.redundant-reset");
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->guard, "reset");
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kRedundantReset));
}

TEST(AbstractLint, ResetAfterSuperpositionNotFlagged) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; reset q[0]; "
      "h q[0]; measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantReset));
}

TEST(AbstractLint, UnreachableConditionalFlaggedAndFixable) {
  // q[0] is never excited, so the measured bit is provably 0 and the
  // guard can never fire.
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 2) {\n"
      "  measure q[0] -> c[0];\n"
      "  if (c[0] == 1) x q[1];\n"
      "  h q[1];\n"
      "  measure q[1] -> c[1];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag =
      find_code(report, DiagCode::kUnreachableConditional);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "abstract.unreachable-conditional");
  EXPECT_EQ(diag->line, 4);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->guard, "if");
  const FixItResult fixed = apply_fixits(source, report.diagnostics);
  EXPECT_EQ(fixed.source.find("if ("), std::string::npos);
  const auto again = analyze_source(fixed.source);
  EXPECT_FALSE(has_code(again, DiagCode::kUnreachableConditional));
}

TEST(AbstractLint, ConditionalOnRandomBitNotFlagged) {
  // The teleportation idiom: guards on genuinely random measurement
  // outcomes must stay un-flagged, and the maybe-taken branch must
  // widen its targets (no deterministic claim on q[1] either).
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; if (c[0] == 1) x q[1]; "
      "measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kUnreachableConditional));
  EXPECT_FALSE(has_code(report, DiagCode::kDeterministicMeasurement));
}

TEST(AbstractLint, TeleportationGoldTemplateStaysClean) {
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kTeleportation;
  const auto report = analyze_source(print_program(llm::gold_program(task)));
  EXPECT_FALSE(has_code(report, DiagCode::kUnreachableConditional));
  EXPECT_FALSE(has_code(report, DiagCode::kDeterministicMeasurement));
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantReset));
  EXPECT_FALSE(has_code(report, DiagCode::kTrivialControlledGate));
}

TEST(AbstractLint, GroupDisableSuppressesAbstractPasses) {
  AnalyzerOptions options;
  options.abstract_lints = false;
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { x q[0]; "
      "measure q[0] -> c[0]; }",
      options);
  EXPECT_FALSE(has_code(report, DiagCode::kDeterministicMeasurement));
}

TEST(AbstractLint, TopologyConformance) {
  const std::string source =
      "import qiskit; circuit main(q: 3, c: 3) { h q[0]; cx q[0], q[2]; "
      "cx q[0], q[1]; cx q[1], q[2]; measure_all; }";
  // Without a committed topology the pass stays silent.
  EXPECT_FALSE(has_code(analyze_source(source), DiagCode::kNonAdjacentQubits));
  AnalyzerOptions options;
  options.topology = lint::CouplingMap{"linear-3", 3, {{0, 1}, {1, 2}}};
  const auto report = analyze_source(source, options);
  const Diagnostic* diag = find_code(report, DiagCode::kNonAdjacentQubits);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "abstract.topology-conformance");
  // cx q[0], q[2] needs one swap on the line; the adjacent pairs pass.
  EXPECT_NE(diag->message.find("~1 swap(s)"), std::string::npos);
  const std::size_t flagged = static_cast<std::size_t>(std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.code == DiagCode::kNonAdjacentQubits;
      }));
  EXPECT_EQ(flagged, 1u);
}

TEST(AbstractLint, TopologyBeyondDeviceQubits) {
  AnalyzerOptions options;
  options.topology = lint::CouplingMap{"tiny-2", 2, {{0, 1}}};
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 3, c: 3) { h q[0]; cx q[0], q[2]; "
      "cx q[0], q[1]; measure_all; }",
      options);
  const Diagnostic* diag = find_code(report, DiagCode::kNonAdjacentQubits);
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->message.find("beyond the 2 qubits"), std::string::npos);
}

// ---------------------------------------------------------------------
// Driver ordering, dedupe, JSON serialisation
// ---------------------------------------------------------------------

TEST(LintDriver, DiagnosticsSortedAndDeduped) {
  const std::string source =
      "import qiskit.execute;\n"
      "circuit main(q: 2, c: 2) {\n"
      "  x q[1]; x q[1];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  // Stable order: (line, pass_id) non-decreasing.
  for (std::size_t i = 0; i + 1 < report.diagnostics.size(); ++i) {
    const Diagnostic& a = report.diagnostics[i];
    const Diagnostic& b = report.diagnostics[i + 1];
    EXPECT_LE(std::tie(a.line, a.pass_id), std::tie(b.line, b.pass_id));
  }
  // The two identical dead `x q[1]` ops share line, code and message:
  // exactly one survives.
  const std::size_t dead = static_cast<std::size_t>(std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == DiagCode::kDeadOperation; }));
  EXPECT_EQ(dead, 1u);
  // No duplicate (line, code, message) triple anywhere.
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    for (std::size_t j = i + 1; j < report.diagnostics.size(); ++j) {
      const Diagnostic& a = report.diagnostics[i];
      const Diagnostic& b = report.diagnostics[j];
      EXPECT_FALSE(a.line == b.line && a.code == b.code &&
                   a.message == b.message)
          << a.message;
    }
  }
}

TEST(DiagnosticsJson, SerialisesCodesAndFixits) {
  const auto report = analyze_source(
      "import qiskit.execute;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n");
  ASSERT_FALSE(report.diagnostics.empty());
  const Json json = diagnostics_to_json(report.diagnostics);
  ASSERT_TRUE(json.is_array());
  const std::string dumped = json.dump();
  EXPECT_NE(dumped.find("\"deprecated-import\""), std::string::npos);
  EXPECT_NE(dumped.find("\"severity\""), std::string::npos);
  EXPECT_NE(dumped.find("\"pass\""), std::string::npos);
  // The deprecated import carries a replacement fix-it.
  EXPECT_NE(dumped.find("\"replacement\""), std::string::npos);
}

TEST(DiagnosticsJson, FixitlessDiagnosticSerialisesNull) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { x q[0]; "
      "measure q[0] -> c[0]; }");
  ASSERT_TRUE(has_code(report, DiagCode::kDeterministicMeasurement));
  const std::string dumped = diagnostics_to_json(report.diagnostics).dump();
  EXPECT_NE(dumped.find("\"deterministic-measurement\""), std::string::npos);
  EXPECT_NE(dumped.find("null"), std::string::npos);
}

// ---------------------------------------------------------------------
// Soundness: every claimed constant must match the exact distribution
// ---------------------------------------------------------------------

TEST(AbstractSoundness, ClaimedConstantsMatchExactDistribution) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Program gold = llm::gold_program(task);
    const std::string source = print_program(gold);
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok()) << source;
    const auto facts = lint::ProgramFacts::compute(*parsed.program);
    const auto abs = lint::abstract::AbstractFacts::compute(
        facts, LanguageRegistry::current());
    ASSERT_EQ(abs.circuits.size(), facts.circuits.size());

    // Gather (clbit, expected bit) claims from the entry circuit.
    ASSERT_FALSE(facts.circuits.empty());
    const auto& cf = facts.circuits[0];
    const auto& acf = abs.circuits[0];
    std::vector<std::pair<std::size_t, char>> claims;
    for (std::size_t i = 0; i < cf.ops.size(); ++i) {
      const auto& fact = acf.ops[i];
      if (!acf.computed || !fact.has_outcome ||
          fact.reach != lint::abstract::OpFact::Reach::kRun) {
        continue;
      }
      if (const auto* m = std::get_if<MeasureStmt>(cf.ops[i].stmt)) {
        claims.emplace_back(m->clbit.index,
                            fact.outcome == sim::SignBit::kOne ? '1' : '0');
      } else if (std::holds_alternative<MeasureAllStmt>(*cf.ops[i].stmt)) {
        for (std::size_t j = 0; j < fact.constant_bits.size(); ++j) {
          claims.emplace_back(j, fact.constant_bits[j]);
        }
      }
    }
    if (claims.empty()) continue;

    // A claim is about the measurement's outcome; comparing against the
    // final register is only valid when that clbit is written once.
    const auto written_once = [&](std::size_t clbit) {
      std::size_t writes = 0;
      for (const auto& ev : cf.clbit_events[clbit]) {
        if (ev.kind == lint::ClbitEvent::Kind::kWrite) ++writes;
      }
      return writes == 1;
    };
    const sim::Circuit circuit = build_circuit(*parsed.program);
    const sim::Distribution dist = sim::exact_distribution(circuit);
    ASSERT_FALSE(dist.empty()) << llm::algorithm_name(id);
    for (const auto& [key, p] : dist) {
      if (p < 1e-9) continue;
      for (const auto& [clbit, bit] : claims) {
        if (!written_once(clbit)) continue;
        ASSERT_LT(clbit, key.size());
        // Distribution keys are Qiskit convention: clbit 0 rightmost.
        EXPECT_EQ(key[key.size() - 1 - clbit], bit)
            << llm::algorithm_name(id) << " claimed c[" << clbit << "] == "
            << bit << " but outcome \"" << key << "\" has p=" << p;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Gold programs stay lint-clean
// ---------------------------------------------------------------------

TEST(LintGoldPrograms, NoErrorsAndNoFalsePositiveDataflowBugs) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Program gold = llm::gold_program(task);
    const std::string source = print_program(gold);
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok()) << source;
    const auto report =
        analyze(*parsed.program, LanguageRegistry::current(), {});
    EXPECT_TRUE(report.ok()) << llm::algorithm_name(id) << "\n"
                             << format_error_trace(report.diagnostics);
    // These dataflow codes on a gold program would be false positives.
    EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kDoubleMeasurement))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit))
        << llm::algorithm_name(id);
  }
}

// Behaviour preservation: applying dead-code / redundant-pair fix-its
// must leave a parseable program whose diagnostics are a subset issue —
// re-analysis shows no new errors.
TEST(LintGoldPrograms, FixitApplicationNeverIntroducesErrors) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const std::string source = print_program(llm::gold_program(task));
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok());
    const auto report =
        analyze(*parsed.program, LanguageRegistry::current(), {});
    const FixItResult fixed = apply_fixits(source, report.diagnostics);
    const ParseResult reparsed = parse(fixed.source);
    ASSERT_TRUE(reparsed.ok()) << llm::algorithm_name(id) << "\n"
                               << fixed.source;
    const auto again =
        analyze(*reparsed.program, LanguageRegistry::current(), {});
    EXPECT_TRUE(again.ok()) << llm::algorithm_name(id) << "\n"
                            << format_error_trace(again.diagnostics);
  }
}

// ---------------------------------------------------------------------
// Driver dedupe: the key must include the pass id
// ---------------------------------------------------------------------

/// Minimal pass emitting the same diagnostic `repeats` times; used to
/// probe the driver's dedupe key.
class StubPass : public lint::LintPass {
 public:
  StubPass(std::string id, int repeats)
      : id_(std::move(id)), repeats_(repeats) {}
  std::string_view id() const override { return id_; }
  std::string_view description() const override { return "test stub"; }
  void run(const lint::PassContext&,
           lint::DiagnosticSink& sink) const override {
    for (int i = 0; i < repeats_; ++i) {
      sink.report(Severity::kWarning, DiagCode::kDeadOperation,
                  "stub finding", 2);
    }
  }

 private:
  std::string id_;
  int repeats_;
};

// Two distinct passes flagging the same (code, line, message) are
// independent findings and must both survive dedupe; the same pass
// repeating itself is a duplicate and must collapse.
TEST(LintDriver, DedupeKeyIncludesPassId) {
  const ParseResult parsed = parse(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; "
      "measure q[0] -> c[0]; }");
  ASSERT_TRUE(parsed.ok());
  lint::PassRegistry registry;
  registry.add(std::make_unique<StubPass>("test.alpha", 2))
      .add(std::make_unique<StubPass>("test.beta", 1));
  const auto report = lint::run_passes(*parsed.program,
                                       LanguageRegistry::current(), registry,
                                       lint::LintConfig{});
  ASSERT_EQ(report.diagnostics.size(), 2u)
      << format_error_trace(report.diagnostics);
  EXPECT_EQ(report.diagnostics[0].pass_id, "test.alpha");
  EXPECT_EQ(report.diagnostics[1].pass_id, "test.beta");
  EXPECT_EQ(report.diagnostics[0].message, report.diagnostics[1].message);
}

// ---------------------------------------------------------------------
// apply_fixits conflict handling
// ---------------------------------------------------------------------

Diagnostic diag_with_fixit(FixIt fix) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = DiagCode::kDeadOperation;
  d.message = "test";
  d.line = fix.line_begin;
  d.fixit = std::move(fix);
  return d;
}

TEST(ApplyFixIts, OverlappingReplacementRejectsSecondDeterministically) {
  const std::string source = "line a\nline b\nline c\n";
  // Bottom-up order applies the line-2 fix first; the [1,2] fix then
  // conflicts with the already-claimed line 2.
  const std::vector<Diagnostic> diags = {
      diag_with_fixit(FixIt{1, 2, "patched one", ""}),
      diag_with_fixit(FixIt{2, 2, "patched two", ""}),
  };
  const FixItResult result = apply_fixits(source, diags);
  EXPECT_EQ(result.applied, 1u);
  EXPECT_EQ(result.source, "line a\npatched two\nline c\n");
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].winner, (FixIt{2, 2, "patched two", ""}));
  EXPECT_EQ(result.conflicts[0].rejected, (FixIt{1, 2, "patched one", ""}));
  EXPECT_NE(result.conflicts[0].to_string().find("conflicts with"),
            std::string::npos);
}

TEST(ApplyFixIts, SameLineTieKeepsFirstInDiagnosticOrder) {
  const std::string source = "one\ntwo\n";
  const std::vector<Diagnostic> diags = {
      diag_with_fixit(FixIt{2, 2, "first wins", ""}),
      diag_with_fixit(FixIt{2, 2, "second loses", ""}),
  };
  const FixItResult result = apply_fixits(source, diags);
  EXPECT_EQ(result.applied, 1u);
  EXPECT_EQ(result.source, "one\nfirst wins\n");
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].rejected.replacement, "second loses");
}

TEST(ApplyFixIts, InsertionsBeforeSameLineNeverConflict) {
  const std::string source = "one\ntwo\n";
  const std::vector<Diagnostic> diags = {
      diag_with_fixit(FixIt{2, 1, "alpha", ""}),  // insertion before line 2
      diag_with_fixit(FixIt{2, 1, "beta", ""}),
  };
  const FixItResult result = apply_fixits(source, diags);
  EXPECT_EQ(result.applied, 2u);
  EXPECT_TRUE(result.conflicts.empty());
  EXPECT_EQ(result.source, "one\nbeta\nalpha\ntwo\n");
}

TEST(ApplyFixIts, InsertionInsideReplacedRangeConflicts) {
  const std::string source = "one\ntwo\nthree\n";
  const std::vector<Diagnostic> diags = {
      diag_with_fixit(FixIt{2, 1, "inserted", ""}),  // before line 2
      diag_with_fixit(FixIt{1, 3, "replaced all", ""}),
  };
  const FixItResult result = apply_fixits(source, diags);
  // The insertion (line_begin 2) applies first bottom-up; the [1,3]
  // replacement then straddles the insertion point and is rejected.
  EXPECT_EQ(result.applied, 1u);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(result.conflicts[0].rejected, (FixIt{1, 3, "replaced all", ""}));
}

TEST(ApplyFixItsDeathTest, FatalPolicyAbortsOnConflict) {
  const std::string source = "one\ntwo\n";
  const std::vector<Diagnostic> diags = {
      diag_with_fixit(FixIt{1, 2, "a", ""}),
      diag_with_fixit(FixIt{2, 2, "b", ""}),
  };
  EXPECT_DEATH(apply_fixits(source, diags, FixItConflictPolicy::kFatal),
               "fatal fix-it conflict");
}

}  // namespace
}  // namespace qcgen::qasm
