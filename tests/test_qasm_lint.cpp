// Tests for the lint-pass framework: the pass registry, per-pass
// configuration, the dataflow passes (positive and negative cases for
// each), and fix-it round-trips (applying the fix-it must make the
// diagnostic disappear on re-analysis).

#include <gtest/gtest.h>

#include <algorithm>

#include "llm/tasks.hpp"
#include "llm/templates.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/lint/driver.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"

namespace qcgen::qasm {
namespace {

AnalysisReport analyze_source(const std::string& source,
                              const AnalyzerOptions& options = {}) {
  const ParseResult parsed = parse(source);
  EXPECT_TRUE(parsed.ok()) << format_error_trace(parsed.diagnostics);
  return analyze(*parsed.program, LanguageRegistry::current(), options);
}

bool has_code(const AnalysisReport& report, DiagCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// Applies every fix-it and re-analyzes the patched source.
AnalysisReport fix_and_reanalyze(const std::string& source,
                                 const AnalysisReport& report,
                                 std::size_t expect_applied) {
  const FixItResult fixed = apply_fixits(source, report.diagnostics);
  EXPECT_EQ(fixed.applied, expect_applied) << "patched:\n" << fixed.source;
  return analyze_source(fixed.source);
}

// ---------------------------------------------------------------------
// Registry / driver / config
// ---------------------------------------------------------------------

TEST(LintRegistry, BuiltinCarriesAllPasses) {
  const auto& registry = lint::PassRegistry::builtin();
  const char* expected[] = {
      "core.imports",           "core.structure",
      "core.gates",             "core.measurement",
      "core.unused-qubit",      "dataflow.clbit-liveness",
      "dataflow.gate-after-measure", "dataflow.double-measure",
      "dataflow.dead-code",     "dataflow.redundant-pair",
  };
  for (const char* id : expected) {
    const lint::LintPass* pass = registry.find(id);
    ASSERT_NE(pass, nullptr) << id;
    EXPECT_EQ(pass->id(), id);
    EXPECT_FALSE(pass->description().empty()) << id;
  }
  EXPECT_EQ(registry.find("core.nonexistent"), nullptr);
  EXPECT_GE(registry.passes().size(), std::size(expected));
}

TEST(LintDriver, DiagnosticsCarryPassIds) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }");
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->pass_id, "dataflow.redundant-pair");
}

TEST(LintDriver, DisabledGroupSuppressesDataflowPasses) {
  const std::string source =
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }";
  const ParseResult parsed = parse(source);
  ASSERT_TRUE(parsed.ok());
  lint::LintConfig config;
  config.disabled_groups.insert("dataflow.");
  const auto report = lint::run_passes(*parsed.program,
                                       LanguageRegistry::current(),
                                       lint::PassRegistry::builtin(), config);
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
  // An explicit per-pass entry wins over the group disable.
  config.passes["dataflow.redundant-pair"].enabled = true;
  const auto restored = lint::run_passes(*parsed.program,
                                         LanguageRegistry::current(),
                                         lint::PassRegistry::builtin(), config);
  EXPECT_TRUE(has_code(restored, DiagCode::kRedundantGatePair));
}

TEST(LintDriver, SeverityOverrides) {
  const std::string source =
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; }";
  const ParseResult parsed = parse(source);
  ASSERT_TRUE(parsed.ok());
  lint::LintConfig config;
  config.passes["dataflow.redundant-pair"].severity = Severity::kError;
  const auto report = lint::run_passes(*parsed.program,
                                       LanguageRegistry::current(),
                                       lint::PassRegistry::builtin(), config);
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kError);
  // Per-code override beats the pass-level one.
  config.code_severity[DiagCode::kRedundantGatePair] = Severity::kWarning;
  const auto again = lint::run_passes(*parsed.program,
                                      LanguageRegistry::current(),
                                      lint::PassRegistry::builtin(), config);
  EXPECT_EQ(find_code(again, DiagCode::kRedundantGatePair)->severity,
            Severity::kWarning);
}

TEST(LintDriver, EmitFixitsOffStripsPatches) {
  AnalyzerOptions options;
  options.emit_fixits = false;
  const auto report = analyze_source(
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n",
      options);
  for (const auto& d : report.diagnostics) {
    EXPECT_FALSE(d.fixit.has_value()) << d.message;
  }
}

TEST(LintDriver, AnalyzerOptionCanDisableDataflow) {
  AnalyzerOptions options;
  options.dataflow_lints = false;
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; h q[0]; "
      "measure q[0] -> c[0]; x q[0]; }",
      options);
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

// ---------------------------------------------------------------------
// dataflow.gate-after-measure
// ---------------------------------------------------------------------

TEST(GateAfterMeasure, FlagsUnconditionalGateAfterMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; x q[0]; measure q[1] -> c[1]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, GuardedCorrectionIsExempt) {
  // The teleportation idiom: measure, then conditionally correct.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; if (c[0] == 1) x q[1]; "
      "measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, ResetRearmsTheQubit) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; x q[0]; "
      "measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

TEST(GateAfterMeasure, OtherQubitsUnaffected) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { measure q[0] -> c[0]; "
      "h q[1]; measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement));
}

// ---------------------------------------------------------------------
// dataflow.double-measure
// ---------------------------------------------------------------------

TEST(DoubleMeasure, FlagsBackToBackMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; measure q[0] -> c[1]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDoubleMeasurement));
  // Different target clbits: flagged, but no delete fix-it (removal
  // would leave c[1] unwritten).
  EXPECT_FALSE(
      find_code(report, DiagCode::kDoubleMeasurement)->fixit.has_value());
}

TEST(DoubleMeasure, SameClbitCarriesDeleteFixit) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDoubleMeasurement);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDoubleMeasurement));
}

TEST(DoubleMeasure, InterveningResetOrGateIsFine) {
  const auto with_reset = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(with_reset, DiagCode::kDoubleMeasurement));
  const auto with_gate = analyze_source(
      "import qiskit; circuit main(q: 1, c: 2) { h q[0]; "
      "measure q[0] -> c[0]; reset q[0]; h q[0]; "
      "measure q[0] -> c[1]; }");
  EXPECT_FALSE(has_code(with_gate, DiagCode::kDoubleMeasurement));
}

// ---------------------------------------------------------------------
// dataflow.clbit-liveness
// ---------------------------------------------------------------------

TEST(ClbitLiveness, StaleWhenWriteComesLater) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { if (c[0] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kConditionOnStaleClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
}

TEST(ClbitLiveness, UnwrittenWhenNoWriteExists) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { if (c[1] == 1) x q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit));
}

TEST(ClbitLiveness, ReadAfterWriteIsClean) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { measure q[0] -> c[0]; "
      "if (c[0] == 1) x q[1]; measure q[1] -> c[1]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit));
  EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit));
}

// ---------------------------------------------------------------------
// dataflow.dead-code
// ---------------------------------------------------------------------

TEST(DeadCode, FlagsGateWithNoPathToMeasurement) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 1) {\n"
      "  h q[0];\n"
      "  x q[1];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeadOperation);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->line, 4);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeadOperation));
}

TEST(DeadCode, EntanglementPropagatesLiveness) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 1) { h q[0]; "
      "cx q[0], q[1]; measure q[1] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, ResetSeversThePast) {
  // The h is wiped out by the unconditional reset before measurement.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; reset q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, SkipsCircuitsWithoutMeasurement) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; }");
  EXPECT_TRUE(has_code(report, DiagCode::kNoMeasurement));
  EXPECT_FALSE(has_code(report, DiagCode::kDeadOperation));
}

TEST(DeadCode, ReportCountIsCapped) {
  // 40 dead gates on q[1]; the pass caps per-circuit reports at 16 and
  // appends one summary diagnostic.
  std::string source = "import qiskit; circuit main(q: 2, c: 1) { ";
  for (int i = 0; i < 40; ++i) source += "x q[1]; ";
  source += "measure q[0] -> c[0]; }";
  const auto report = analyze_source(source);
  const auto dead = std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == DiagCode::kDeadOperation; });
  EXPECT_EQ(dead, 17);  // 16 individual + 1 summary
}

// ---------------------------------------------------------------------
// dataflow.redundant-pair
// ---------------------------------------------------------------------

TEST(RedundantPair, FlagsAdjacentSelfInversePair) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kRedundantGatePair);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->line_begin, 3);
  EXPECT_EQ(diag->fixit->line_end, 4);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, BarrierBreaksAdjacency) {
  // The DJ constant-oracle shape: h ... barrier ... h is deliberate.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { h q[0]; barrier; "
      "h q[0]; measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, InterleavedOperandBreaksAdjacency) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[0], q[1]; "
      "x q[1]; cx q[0], q[1]; measure_all; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, OperandOrderMattersForCx) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { cx q[0], q[1]; "
      "cx q[1], q[0]; measure_all; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, CzIsOperandSymmetric) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cz q[0], q[1]; "
      "cz q[1], q[0]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, NonSelfInverseGatesAreFine) {
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 1, c: 1) { t q[0]; t q[0]; "
      "measure q[0] -> c[0]; }");
  EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair));
}

TEST(RedundantPair, ResolvesAliasesBeforeComparing) {
  // cnot and cx are the same gate; the pair still cancels.
  const auto report = analyze_source(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cnot q[0], q[1]; "
      "cx q[0], q[1]; measure_all; }");
  EXPECT_TRUE(has_code(report, DiagCode::kRedundantGatePair));
}

// ---------------------------------------------------------------------
// Fix-its on the core passes
// ---------------------------------------------------------------------

TEST(CoreFixits, DeprecatedImportReplacement) {
  const std::string source =
      "import qiskit;\n"
      "import qiskit.execute;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeprecatedImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_EQ(diag->fixit->line_begin, 2);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedImport));
  EXPECT_TRUE(fixed.ok());
}

TEST(CoreFixits, UnknownImportDeletion) {
  const std::string source =
      "import qiskit;\n"
      "import made.up.module;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kUnknownImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kUnknownImport));
}

TEST(CoreFixits, MissingImportInsertion) {
  const std::string source =
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kMissingQiskitImport);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_TRUE(diag->fixit->is_insertion());
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kMissingQiskitImport));
}

TEST(CoreFixits, DeprecatedAliasRename) {
  const std::string source =
      "import qiskit;\n"
      "circuit main(q: 2, c: 2) {\n"
      "  h q[0];\n"
      "  cnot q[0], q[1];\n"
      "  measure_all;\n"
      "}\n";
  const auto report = analyze_source(source);
  const Diagnostic* diag = find_code(report, DiagCode::kDeprecatedGateAlias);
  ASSERT_NE(diag, nullptr);
  ASSERT_TRUE(diag->fixit.has_value());
  EXPECT_NE(diag->fixit->replacement.find("cx"), std::string::npos);
  const auto fixed = fix_and_reanalyze(source, report, 1);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedGateAlias));
}

// ---------------------------------------------------------------------
// Fix-it application mechanics
// ---------------------------------------------------------------------

TEST(FixItApply, GuardRefusesMismatchedLines) {
  const FixIt fix{2, 2, "import qiskit.primitives;", "qiskit.execute"};
  EXPECT_FALSE(apply_fixit("line one\nline two\n", fix).has_value());
  EXPECT_TRUE(
      apply_fixit("line one\nimport qiskit.execute;\n", fix).has_value());
}

TEST(FixItApply, RangeChecks) {
  EXPECT_FALSE(apply_fixit("only\n", FixIt{0, 0, "x", ""}).has_value());
  EXPECT_FALSE(apply_fixit("only\n", FixIt{1, 9, "x", ""}).has_value());
  // Insertion past the end appends.
  const auto appended = apply_fixit("only\n", FixIt{2, 0, "tail", ""});
  ASSERT_TRUE(appended.has_value());
  EXPECT_EQ(*appended, "only\ntail\n");
}

TEST(FixItApply, MultipleFixitsApplyBottomUp) {
  // Deprecated import (line 2) + redundant pair (lines 4-5): both must
  // apply in one apply_fixits call without line-number skew.
  const std::string source =
      "import qiskit;\n"
      "import qiskit.execute;\n"
      "circuit main(q: 1, c: 1) {\n"
      "  h q[0];\n"
      "  h q[0];\n"
      "  measure q[0] -> c[0];\n"
      "}\n";
  const auto report = analyze_source(source);
  const auto fixed = fix_and_reanalyze(source, report, 2);
  EXPECT_FALSE(has_code(fixed, DiagCode::kDeprecatedImport));
  EXPECT_FALSE(has_code(fixed, DiagCode::kRedundantGatePair));
  EXPECT_TRUE(fixed.ok());
}

// ---------------------------------------------------------------------
// Gold programs stay lint-clean
// ---------------------------------------------------------------------

TEST(LintGoldPrograms, NoErrorsAndNoFalsePositiveDataflowBugs) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Program gold = llm::gold_program(task);
    const std::string source = print_program(gold);
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok()) << source;
    const auto report =
        analyze(*parsed.program, LanguageRegistry::current(), {});
    EXPECT_TRUE(report.ok()) << llm::algorithm_name(id) << "\n"
                             << format_error_trace(report.diagnostics);
    // These dataflow codes on a gold program would be false positives.
    EXPECT_FALSE(has_code(report, DiagCode::kGateAfterMeasurement))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kDoubleMeasurement))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kRedundantGatePair))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kConditionOnStaleClbit))
        << llm::algorithm_name(id);
    EXPECT_FALSE(has_code(report, DiagCode::kConditionOnUnwrittenClbit))
        << llm::algorithm_name(id);
  }
}

// Behaviour preservation: applying dead-code / redundant-pair fix-its
// must leave a parseable program whose diagnostics are a subset issue —
// re-analysis shows no new errors.
TEST(LintGoldPrograms, FixitApplicationNeverIntroducesErrors) {
  for (const llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const std::string source = print_program(llm::gold_program(task));
    const ParseResult parsed = parse(source);
    ASSERT_TRUE(parsed.ok());
    const auto report =
        analyze(*parsed.program, LanguageRegistry::current(), {});
    const FixItResult fixed = apply_fixits(source, report.diagnostics);
    const ParseResult reparsed = parse(fixed.source);
    ASSERT_TRUE(reparsed.ok()) << llm::algorithm_name(id) << "\n"
                               << fixed.source;
    const auto again =
        analyze(*reparsed.program, LanguageRegistry::current(), {});
    EXPECT_TRUE(again.ok()) << llm::algorithm_name(id) << "\n"
                            << format_error_trace(again.diagnostics);
  }
}

}  // namespace
}  // namespace qcgen::qasm
