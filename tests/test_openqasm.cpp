// OpenQASM 2.0 interop tests: export format, import parsing, and the
// export -> import round-trip property over the whole workload library.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "qasm/openqasm.hpp"
#include "sim/statevector.hpp"

namespace qcgen::qasm {
namespace {

TEST(OpenQasmExport, HeaderAndRegisters) {
  const std::string text = to_openqasm(sim::circuits::bell_pair());
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(text.find("creg c0[1];"), std::string::npos);
  EXPECT_NE(text.find("creg c1[1];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(text.find("measure q[0] -> c0[0];"), std::string::npos);
}

TEST(OpenQasmExport, GateRenames) {
  sim::Circuit c(1, 1);
  c.p(0.5, 0);
  c.u(0.1, 0.2, 0.3, 0);
  c.id(0);
  const std::string text = to_openqasm(c);
  EXPECT_NE(text.find("u1(0.5) q[0];"), std::string::npos);
  EXPECT_NE(text.find("u3(0.1"), std::string::npos);
  EXPECT_NE(text.find("id q[0];"), std::string::npos);
}

TEST(OpenQasmExport, ConditionsUseIfSyntax) {
  const std::string text = to_openqasm(sim::circuits::teleportation(0.7));
  EXPECT_NE(text.find("if (c1 == 1) x q[2];"), std::string::npos);
  EXPECT_NE(text.find("if (c0 == 1) z q[2];"), std::string::npos);
}

TEST(OpenQasmImport, ParsesSimpleProgram) {
  const std::string text =
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[2];\n"
      "creg c0[1];\n"
      "creg c1[1];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n"
      "measure q[0] -> c0[0];\n"
      "measure q[1] -> c1[0];\n";
  const OpenQasmResult result = from_openqasm(text);
  ASSERT_TRUE(result.ok()) << format_error_trace(result.diagnostics);
  EXPECT_EQ(result.circuit->num_qubits(), 2u);
  EXPECT_EQ(result.circuit->num_clbits(), 2u);
  EXPECT_EQ(result.circuit->size(), 4u);
}

TEST(OpenQasmImport, RejectsMissingQreg) {
  const OpenQasmResult result = from_openqasm("OPENQASM 2.0;\nh q[0];\n");
  EXPECT_FALSE(result.ok());
}

TEST(OpenQasmImport, RejectsUnknownGate) {
  const OpenQasmResult result = from_openqasm(
      "qreg q[1];\nfrobnicate q[0];\n");
  EXPECT_FALSE(result.ok());
}

TEST(OpenQasmImport, RejectsMissingSemicolon) {
  const OpenQasmResult result = from_openqasm("qreg q[1];\nh q[0]\n");
  EXPECT_FALSE(result.ok());
}

TEST(OpenQasmImport, RejectsOutOfRangeOperand) {
  const OpenQasmResult result = from_openqasm("qreg q[1];\nh q[4];\n");
  EXPECT_FALSE(result.ok());
}

TEST(OpenQasmImport, CommentsAndBlankLinesIgnored) {
  const OpenQasmResult result = from_openqasm(
      "qreg q[1];\n\n// a comment\nx q[0];\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.circuit->size(), 1u);
}

class OpenQasmRoundTrip : public ::testing::TestWithParam<llm::AlgorithmId> {};

TEST_P(OpenQasmRoundTrip, ExportImportPreservesBehaviour) {
  llm::TaskSpec task;
  task.algorithm = GetParam();
  const sim::Circuit original =
      build_circuit(llm::gold_program(task));
  const std::string text = to_openqasm(original);
  const OpenQasmResult imported = from_openqasm(text);
  ASSERT_TRUE(imported.ok())
      << text << "\n" << format_error_trace(imported.diagnostics);
  const auto d1 = sim::exact_distribution(original);
  const auto d2 = sim::exact_distribution(*imported.circuit);
  EXPECT_LT(total_variation_distance(d1, d2), 1e-9)
      << llm::algorithm_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, OpenQasmRoundTrip,
    ::testing::ValuesIn(llm::all_algorithms()),
    [](const auto& info) {
      return std::string(llm::algorithm_name(info.param));
    });

TEST(OpenQasmRoundTripExtra, ReferencesWithResetAndBarrier) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.barrier();
  c.reset(1);
  c.cx(0, 1);
  c.measure_all();
  const OpenQasmResult imported = from_openqasm(to_openqasm(c));
  ASSERT_TRUE(imported.ok());
  const auto d1 = sim::exact_distribution(c);
  const auto d2 = sim::exact_distribution(*imported.circuit);
  EXPECT_LT(total_variation_distance(d1, d2), 1e-9);
}

}  // namespace
}  // namespace qcgen::qasm
