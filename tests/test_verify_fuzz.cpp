// Differential fuzzing for the equivalence checker: random circuits are
// mutated either semantics-preservingly (identity-pair insertion,
// SWAP = 3 CX rewriting, commuting adjacent disjoint gates) or
// semantics-breakingly (a single extra gate), and every verdict is
// cross-checked against exact reference distributions. The acceptance
// bar is zero false proved-equal verdicts: whenever the exact
// distributions differ the checker must say proved-different, and it
// must never refute a preserving mutation.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "qasm/verify/equivalence.hpp"
#include "sim/circuit.hpp"
#include "sim/statevector.hpp"

namespace qcgen::qasm::verify {
namespace {

using sim::Circuit;
using sim::GateKind;
using sim::Operation;

Operation gate_op(GateKind kind, std::vector<std::size_t> qubits,
                  std::vector<double> params = {}) {
  Operation op;
  op.kind = kind;
  op.qubits = std::move(qubits);
  op.params = std::move(params);
  return op;
}

Circuit rebuild(std::size_t num_qubits, std::size_t num_clbits,
                const std::vector<Operation>& ops) {
  Circuit c(num_qubits, num_clbits);
  for (const Operation& op : ops) c.append(op);
  return c;
}

std::size_t first_measure_index(const std::vector<Operation>& ops) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == GateKind::kMeasure) return i;
  }
  return ops.size();
}

/// Random measured circuit over {H,S,X,Z,CX,CZ} (+T/RZ when `with_t`).
Circuit random_circuit(Rng& rng, std::size_t n, std::size_t depth,
                       bool with_t) {
  Circuit c(n, n);
  for (std::size_t i = 0; i < depth; ++i) {
    const std::size_t q = rng.uniform_int(n);
    const std::size_t r = rng.uniform_int(with_t ? 8u : 6u);
    switch (r) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.x(q); break;
      case 3: c.z(q); break;
      case 4: {
        const std::size_t p = (q + 1 + rng.uniform_int(n - 1)) % n;
        c.cx(q, p);
        break;
      }
      case 5: {
        const std::size_t p = (q + 1 + rng.uniform_int(n - 1)) % n;
        c.cz(q, p);
        break;
      }
      case 6: c.t(q); break;
      default: c.rz(0.3, q); break;
    }
  }
  c.measure_all();
  return c;
}

/// Inserts a provably-identity gate sequence at a random point before
/// the measurement tail.
Circuit insert_identity_pair(const Circuit& c, Rng& rng) {
  std::vector<Operation> ops = c.operations();
  const std::size_t cut = rng.uniform_int(first_measure_index(ops) + 1);
  const std::size_t n = c.num_qubits();
  const std::size_t q = rng.uniform_int(n);
  const std::size_t p = (q + 1 + rng.uniform_int(n - 1)) % n;
  std::vector<Operation> pair;
  switch (rng.uniform_int(6u)) {
    case 0: pair = {gate_op(GateKind::kH, {q}), gate_op(GateKind::kH, {q})};
      break;
    case 1: pair = {gate_op(GateKind::kX, {q}), gate_op(GateKind::kX, {q})};
      break;
    case 2: pair = {gate_op(GateKind::kS, {q}), gate_op(GateKind::kSdg, {q})};
      break;
    case 3: pair = {gate_op(GateKind::kZ, {q}), gate_op(GateKind::kZ, {q})};
      break;
    case 4:
      pair = {gate_op(GateKind::kCX, {q, p}), gate_op(GateKind::kCX, {q, p})};
      break;
    default:
      // SWAP followed by its three-CX expansion: net identity.
      pair = {gate_op(GateKind::kSwap, {q, p}), gate_op(GateKind::kCX, {q, p}),
              gate_op(GateKind::kCX, {p, q}), gate_op(GateKind::kCX, {q, p})};
      break;
  }
  ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(cut), pair.begin(),
             pair.end());
  return rebuild(c.num_qubits(), c.num_clbits(), ops);
}

/// Swaps one random adjacent pair of gates with disjoint qubit support
/// (a commuting reordering); `changed` reports whether a pair existed.
Circuit commute_adjacent(const Circuit& c, Rng& rng, bool* changed) {
  std::vector<Operation> ops = c.operations();
  std::vector<std::size_t> sites;
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    const Operation& a = ops[i];
    const Operation& b = ops[i + 1];
    if (a.kind == GateKind::kMeasure || b.kind == GateKind::kMeasure) continue;
    bool disjoint = true;
    for (const std::size_t qa : a.qubits) {
      for (const std::size_t qb : b.qubits) {
        if (qa == qb) disjoint = false;
      }
    }
    if (disjoint) sites.push_back(i);
  }
  *changed = !sites.empty();
  if (sites.empty()) return c;
  const std::size_t i = sites[rng.uniform_int(sites.size())];
  std::swap(ops[i], ops[i + 1]);
  return rebuild(c.num_qubits(), c.num_clbits(), ops);
}

/// Inserts one extra gate — usually semantics-breaking, sometimes a
/// coincidental no-op; the caller decides from the exact distributions.
Circuit insert_single_gate(const Circuit& c, Rng& rng) {
  std::vector<Operation> ops = c.operations();
  const std::size_t cut = rng.uniform_int(first_measure_index(ops) + 1);
  const std::size_t q = rng.uniform_int(c.num_qubits());
  static constexpr GateKind kPool[] = {GateKind::kX, GateKind::kH,
                                       GateKind::kZ, GateKind::kS};
  ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(cut),
             gate_op(kPool[rng.uniform_int(4u)], {q}));
  return rebuild(c.num_qubits(), c.num_clbits(), ops);
}

double exact_tvd(const Circuit& a, const Circuit& b) {
  return total_variation_distance(sim::exact_distribution(a),
                                  sim::exact_distribution(b));
}

constexpr std::size_t kCliffordTrials = 40;
constexpr std::size_t kMixedTrials = 20;

Circuit trial_circuit(std::size_t trial, Rng& rng) {
  const bool with_t = trial >= kCliffordTrials;
  return random_circuit(rng, 2 + trial % 3, 8 + trial % 8, with_t);
}

TEST(VerifyFuzz, PreservingMutationsProveEqual) {
  for (std::size_t trial = 0; trial < kCliffordTrials + kMixedTrials;
       ++trial) {
    Rng rng(0x5eed0000 + trial);
    const Circuit base = trial_circuit(trial, rng);

    const Circuit padded = insert_identity_pair(base, rng);
    ASSERT_LE(exact_tvd(base, padded), 1e-9) << "mutation harness bug";
    const Certificate pad_cert = check_equivalence(base, padded);
    EXPECT_TRUE(pad_cert.proved_equal())
        << "trial " << trial << ": " << pad_cert.note << "\n"
        << base.to_string() << "vs\n" << padded.to_string();

    bool changed = false;
    const Circuit commuted = commute_adjacent(base, rng, &changed);
    if (changed) {
      ASSERT_LE(exact_tvd(base, commuted), 1e-9) << "mutation harness bug";
      const Certificate cert = check_equivalence(base, commuted);
      EXPECT_TRUE(cert.proved_equal())
          << "trial " << trial << ": " << cert.note;
    }
  }
}

TEST(VerifyFuzz, BreakingMutationsNeverProveEqual) {
  std::size_t actually_breaking = 0;
  for (std::size_t trial = 0; trial < kCliffordTrials + kMixedTrials;
       ++trial) {
    Rng rng(0xb4d0000 + trial);
    const Circuit base = trial_circuit(trial, rng);
    const Circuit mutated = insert_single_gate(base, rng);
    const double tvd = exact_tvd(base, mutated);
    const Certificate cert = check_equivalence(base, mutated);
    EXPECT_NE(cert.verdict, Verdict::kUnknown)
        << "trial " << trial << ": " << cert.note;
    if (tvd > 1e-9) {
      ++actually_breaking;
      EXPECT_TRUE(cert.proved_different())
          << "FALSE EQUIVALENCE at trial " << trial << " (tvd=" << tvd
          << "): " << cert.note << "\n"
          << base.to_string() << "vs\n" << mutated.to_string();
    } else {
      EXPECT_FALSE(cert.proved_different())
          << "false refutation at trial " << trial << ": "
          << cert.counterexample;
    }
  }
  // The mutation pool must actually exercise the breaking path.
  EXPECT_GE(actually_breaking, 15u);
}

}  // namespace
}  // namespace qcgen::qasm::verify
