// Tests for the Steane [[7,1,3]] code.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qec/steane.hpp"
#include "sim/tableau.hpp"

namespace qcgen::qec {
namespace {

TEST(Steane, StabilizerStructure) {
  const SteaneCode code;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(code.x_stabilizers()[k].size(), 4u);
    EXPECT_EQ(code.z_stabilizers()[k].size(), 4u);
  }
  // Check k-th stabilizer covers qubits with bit k set in (index+1).
  EXPECT_EQ(code.x_stabilizers()[0], (std::vector<std::size_t>{0, 2, 4, 6}));
  EXPECT_EQ(code.x_stabilizers()[1], (std::vector<std::size_t>{1, 2, 5, 6}));
  EXPECT_EQ(code.x_stabilizers()[2], (std::vector<std::size_t>{3, 4, 5, 6}));
}

TEST(Steane, SyndromeIdentifiesEverySingleError) {
  const SteaneCode code;
  for (std::size_t q = 0; q < SteaneCode::kNumQubits; ++q) {
    std::vector<std::uint8_t> err(SteaneCode::kNumQubits, 0);
    err[q] = 1;
    const std::uint8_t syn = code.x_syndrome(err);
    EXPECT_EQ(syn, static_cast<std::uint8_t>(q + 1));
    EXPECT_EQ(code.correction_qubit(syn), q);
  }
}

TEST(Steane, TrivialSyndromeMeansNoCorrection) {
  const SteaneCode code;
  EXPECT_EQ(code.correction_qubit(0), SteaneCode::kNumQubits);
  EXPECT_THROW(code.correction_qubit(8), InvalidArgumentError);
}

TEST(Steane, CorrectsAllWeightOneErrorsPerfectly) {
  // At very low p the failure rate must vanish quadratically: all single
  // errors are corrected, so failures need >= 2 errors.
  const SteaneCode code;
  const double rate = code.logical_error_rate(0.001, 50000, 3);
  EXPECT_LT(rate, 5e-4);
}

TEST(Steane, ErrorRateMonotonicInP) {
  const SteaneCode code;
  const double low = code.logical_error_rate(0.01, 20000, 5);
  const double high = code.logical_error_rate(0.10, 20000, 5);
  EXPECT_LT(low, high);
}

TEST(Steane, PseudoThresholdExists) {
  // Below the pseudo-threshold the encoded error rate beats the raw
  // physical rate.
  const SteaneCode code;
  const double p = 0.005;
  const double encoded = code.logical_error_rate(p, 60000, 7);
  EXPECT_LT(encoded, p);
}

TEST(Steane, EncodingCircuitStabilizesLogicalZero) {
  // After the encoding circuit, every stabilizer generator measures +1:
  // check via parity measurements on a tableau.
  const SteaneCode code;
  sim::Tableau tab(SteaneCode::kNumQubits);
  Rng rng(1);
  const sim::Circuit enc = code.encoding_circuit();
  for (const auto& op : enc.operations()) {
    if (op.kind == sim::GateKind::kMeasure ||
        op.kind == sim::GateKind::kBarrier) {
      continue;
    }
    tab.apply(op);
  }
  // Z-type stabilizers are Z-strings: expectation must be +1.
  for (const auto& support : code.z_stabilizers()) {
    std::vector<std::size_t> qubits(support.begin(), support.end());
    EXPECT_EQ(tab.pauli_z_expectation(qubits), 1);
  }
  // Logical Z (all 7 qubits) must be +1 for logical |0>.
  EXPECT_EQ(tab.pauli_z_expectation({0, 1, 2, 3, 4, 5, 6}), 1);
}

TEST(Steane, ErrorVectorSizeValidated) {
  const SteaneCode code;
  EXPECT_THROW(code.x_syndrome(std::vector<std::uint8_t>(5, 0)),
               InvalidArgumentError);
  EXPECT_THROW(code.z_syndrome(std::vector<std::uint8_t>(8, 0)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::qec

// --- Repetition code (same translation unit keeps the suite compact) ---

#include "qec/repetition.hpp"

namespace qcgen::qec {
namespace {

TEST(Repetition, ConstructionValidation) {
  EXPECT_THROW(RepetitionCode(2), InvalidArgumentError);
  EXPECT_THROW(RepetitionCode(1), InvalidArgumentError);
  const RepetitionCode code(5);
  EXPECT_EQ(code.num_data_qubits(), 5u);
  EXPECT_EQ(code.num_stabilizers(), 4u);
}

TEST(Repetition, SyndromeLocalisesErrors) {
  const RepetitionCode code(5);
  std::vector<std::uint8_t> errors(5, 0);
  errors[2] = 1;
  const auto syn = code.syndrome(errors);
  EXPECT_EQ(syn, (std::vector<std::uint8_t>{0, 1, 1, 0}));
}

TEST(Repetition, DecodesUpToHalfDistance) {
  // Any error of weight <= (d-1)/2 must be corrected exactly.
  const int d = 7;
  const RepetitionCode code(d);
  for (std::uint64_t mask = 0; mask < (1ULL << d); ++mask) {
    if (__builtin_popcountll(mask) > (d - 1) / 2) continue;
    std::vector<std::uint8_t> errors(static_cast<std::size_t>(d), 0);
    for (int q = 0; q < d; ++q) errors[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((mask >> q) & 1ULL);
    auto residual = errors;
    for (std::size_t q : code.decode(code.syndrome(errors))) residual[q] ^= 1;
    for (auto b : residual) EXPECT_EQ(b, 0) << "mask " << mask;
  }
}

TEST(Repetition, MajorityErrorsCauseLogicalFlip) {
  const RepetitionCode code(3);
  std::vector<std::uint8_t> errors = {1, 1, 0};
  auto residual = errors;
  for (std::size_t q : code.decode(code.syndrome(errors))) residual[q] ^= 1;
  // Weight-2 error on d=3 exceeds the correction radius: full flip.
  EXPECT_EQ(residual, (std::vector<std::uint8_t>{1, 1, 1}));
}

TEST(Repetition, LogicalRateSuppressedBelowHalf) {
  const RepetitionCode d3(3);
  const RepetitionCode d7(7);
  const double p = 0.05;
  const double r3 = d3.logical_error_rate(p, 40000, 3);
  const double r7 = d7.logical_error_rate(p, 40000, 3);
  EXPECT_LT(r3, p);        // pseudo-threshold
  EXPECT_LT(r7, r3);       // distance helps
  // d=3 corrects single errors: failure ~ 3 p^2 = 0.0075.
  EXPECT_NEAR(r3, 3 * p * p, 0.003);
}

TEST(Repetition, AboveHalfNoiseCodeHurts) {
  const RepetitionCode code(5);
  const double r = code.logical_error_rate(0.7, 20000, 5);
  EXPECT_GT(r, 0.7);  // majority vote amplifies errors past p = 1/2
}

}  // namespace
}  // namespace qcgen::qec
