// Tests for the transpiler: decomposition correctness, layout quality,
// routing validity, and end-to-end behavioural equivalence.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "sim/statevector.hpp"
#include "transpile/transpiler.hpp"

namespace qcgen::transpile {
namespace {

using agents::DeviceTopology;
using sim::Circuit;
using sim::GateKind;

bool all_native(const Circuit& c) {
  for (const auto& op : c.operations()) {
    if (!is_native(op.kind)) return false;
  }
  return true;
}

bool respects_coupling(const Circuit& c, const DeviceTopology& device) {
  for (const auto& op : c.operations()) {
    if (op.kind == GateKind::kBarrier || op.qubits.size() < 2) continue;
    if (!device.are_coupled(op.qubits[0], op.qubits[1])) return false;
  }
  return true;
}

// --- Decomposition ----------------------------------------------------

class DecomposeGate : public ::testing::TestWithParam<GateKind> {};

TEST_P(DecomposeGate, PreservesBehaviourExactly) {
  // Property: applying the gate to a random-ish entangled input state and
  // measuring must match the decomposed version exactly.
  const GateKind kind = GetParam();
  const sim::GateInfo& gi = sim::gate_info(kind);
  const std::size_t arity = static_cast<std::size_t>(gi.num_qubits);
  const std::size_t n = std::max<std::size_t>(arity, 2);

  Circuit original(n, n);
  // Entangling preamble so phases matter.
  original.h(0);
  for (std::size_t q = 1; q < n; ++q) original.cx(q - 1, q);
  original.t(0);
  sim::Operation op;
  op.kind = kind;
  for (std::size_t q = 0; q < arity; ++q) op.qubits.push_back(q);
  for (int p = 0; p < gi.num_params; ++p) op.params.push_back(0.37 * (p + 1));
  original.append(op);
  original.h(0);
  original.measure_all();

  const Circuit native = decompose(original);
  EXPECT_TRUE(all_native(native)) << sim::gate_name(kind);
  EXPECT_TRUE(equivalent(original, native)) << sim::gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnitaries, DecomposeGate,
    ::testing::Values(GateKind::kY, GateKind::kZ, GateKind::kH, GateKind::kS,
                      GateKind::kSdg, GateKind::kT, GateKind::kTdg,
                      GateKind::kRX, GateKind::kRY, GateKind::kRZ,
                      GateKind::kPhase, GateKind::kU, GateKind::kCY,
                      GateKind::kCZ, GateKind::kCPhase, GateKind::kSwap,
                      GateKind::kCCX, GateKind::kCSwap, GateKind::kRZZ),
    [](const auto& info) { return std::string(sim::gate_name(info.param)); });

TEST(Decompose, PreservesConditions) {
  Circuit c = sim::circuits::teleportation(0.9);
  const Circuit native = decompose(c);
  EXPECT_TRUE(all_native(native));
  EXPECT_TRUE(native.has_conditions());
  EXPECT_TRUE(equivalent(c, native));
}

TEST(Decompose, GoldProgramsStayEquivalent) {
  for (llm::AlgorithmId id : llm::all_algorithms()) {
    llm::TaskSpec task;
    task.algorithm = id;
    const Circuit circuit = qasm::build_circuit(llm::gold_program(task));
    const Circuit native = decompose(circuit);
    EXPECT_TRUE(all_native(native)) << llm::algorithm_name(id);
    EXPECT_TRUE(equivalent(circuit, native)) << llm::algorithm_name(id);
  }
}

TEST(Decompose, TwoQubitCostModel) {
  sim::Operation swap;
  swap.kind = GateKind::kSwap;
  swap.qubits = {0, 1};
  EXPECT_EQ(two_qubit_cost(swap), 3u);
  sim::Operation ccx;
  ccx.kind = GateKind::kCCX;
  ccx.qubits = {0, 1, 2};
  EXPECT_EQ(two_qubit_cost(ccx), 6u);
  sim::Operation h;
  h.kind = GateKind::kH;
  h.qubits = {0};
  EXPECT_EQ(two_qubit_cost(h), 0u);
}

// --- Layout -----------------------------------------------------------

TEST(Layout, TrivialIsIdentity) {
  const Layout layout = trivial_layout(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(layout.physical(i), i);
  EXPECT_EQ(layout.logical_of(2, 10), 2u);
  EXPECT_EQ(layout.logical_of(7, 10), 10u);  // unused physical
}

TEST(Layout, BestLayoutEmbedsChainPerfectly) {
  // A GHZ chain on a linear device embeds with zero routing cost (the
  // identity layout is optimal; best_layout must find it even when the
  // greedy heuristic scatters the chain).
  const Circuit c = decompose(sim::circuits::ghz(5));
  const DeviceTopology device = DeviceTopology::linear(5);
  EXPECT_EQ(layout_cost(c, device, best_layout(c, device)), 0u);
}

TEST(Layout, GreedyBeatsTrivialOnScatteredCircuit) {
  // A circuit entangling qubit 0 with qubit 5 repeatedly: trivial layout
  // pays distance, greedy should place them adjacent.
  Circuit c(6, 6);
  for (int i = 0; i < 4; ++i) c.cx(0, 5);
  c.measure_all();
  const DeviceTopology device = DeviceTopology::linear(6);
  const std::size_t trivial_cost =
      layout_cost(c, device, trivial_layout(6));
  const std::size_t greedy_cost =
      layout_cost(c, device, greedy_layout(c, device));
  EXPECT_LT(greedy_cost, trivial_cost);
  // And best_layout can never do worse than either.
  EXPECT_LE(layout_cost(c, device, best_layout(c, device)), greedy_cost);
}

TEST(Layout, RejectsOversizedCircuit) {
  Circuit c(10, 10);
  c.h(0);
  EXPECT_THROW(greedy_layout(c, DeviceTopology::linear(4)),
               InvalidArgumentError);
}

// --- Routing ----------------------------------------------------------

TEST(Router, AdjacentGatesNeedNoSwaps) {
  const Circuit c = decompose(sim::circuits::ghz(4));
  const DeviceTopology device = DeviceTopology::linear(4);
  const RoutedCircuit routed = route(c, device, trivial_layout(4));
  EXPECT_EQ(routed.swaps_inserted, 0u);
  EXPECT_TRUE(respects_coupling(routed.circuit, device));
}

TEST(Router, InsertsSwapsForDistantPairs) {
  Circuit c(4, 4);
  c.h(0);
  c.cx(0, 3);  // distance 3 on a line
  c.measure_all();
  const DeviceTopology device = DeviceTopology::linear(4);
  const RoutedCircuit routed =
      route(decompose(c), device, trivial_layout(4));
  EXPECT_GE(routed.swaps_inserted, 1u);
  EXPECT_TRUE(respects_coupling(routed.circuit, device));
  EXPECT_TRUE(equivalent(c, routed.circuit));
}

TEST(Router, RejectsUndecomposedInput) {
  Circuit c(3, 3);
  c.ccx(0, 1, 2);
  EXPECT_THROW(route(c, DeviceTopology::linear(3), trivial_layout(3)),
               InvalidArgumentError);
}

// --- End-to-end -------------------------------------------------------

class TranspileGold : public ::testing::TestWithParam<llm::AlgorithmId> {};

TEST_P(TranspileGold, EquivalentOnGridDevice) {
  llm::TaskSpec task;
  task.algorithm = GetParam();
  const Circuit circuit = qasm::build_circuit(llm::gold_program(task));
  if (circuit.num_qubits() > 9) GTEST_SKIP() << "needs a bigger grid";
  const DeviceTopology device = DeviceTopology::grid(3, 3);
  const TranspileResult result = transpile(circuit, device);
  EXPECT_TRUE(all_native(result.circuit));
  EXPECT_TRUE(respects_coupling(result.circuit, device));
  EXPECT_TRUE(equivalent(circuit, result.circuit))
      << llm::algorithm_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TranspileGold,
    ::testing::Values(llm::AlgorithmId::kBellPair, llm::AlgorithmId::kGhz,
                      llm::AlgorithmId::kDeutschJozsa,
                      llm::AlgorithmId::kGrover, llm::AlgorithmId::kQft,
                      llm::AlgorithmId::kTeleportation,
                      llm::AlgorithmId::kShorPeriodFinding,
                      llm::AlgorithmId::kQuantumAnnealing),
    [](const auto& info) {
      return std::string(llm::algorithm_name(info.param));
    });

TEST(Transpile, MetricsArePopulated) {
  const Circuit circuit = sim::circuits::grover(3, 5, 1);
  const DeviceTopology device = DeviceTopology::grid(3, 3);
  const TranspileResult result = transpile(circuit, device);
  EXPECT_GT(result.depth_after, 0u);
  EXPECT_GT(result.native_two_qubit_gates, 0u);
  EXPECT_EQ(result.initial_layout.physical_of.size(), 3u);
}

TEST(Transpile, GreedyLayoutNoWorseThanTrivialOnHeavyHex) {
  const Circuit circuit = sim::circuits::ghz(6);
  const DeviceTopology device = DeviceTopology::heavy_hex(2, 2);
  const TranspileResult greedy =
      transpile(circuit, device, LayoutStrategy::kGreedy);
  const TranspileResult trivial =
      transpile(circuit, device, LayoutStrategy::kTrivial);
  EXPECT_LE(greedy.swaps_inserted, trivial.swaps_inserted);
}

TEST(Transpile, RejectsOversizedCircuit) {
  Circuit big(10, 10);
  big.h(0);
  EXPECT_THROW(transpile(big, DeviceTopology::grid(2, 2)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::transpile
