// Tests for the shared bench harness flag parsing (bench/harness.hpp).
//
// The harness owns the CLI surface of every bench binary, so malformed
// invocations must fail fast with exit code 2 instead of silently
// running a wrong experiment (a negative --samples used to wrap around
// through std::stoull to 2^64-3). Exit paths are covered with gtest
// death tests; the parsed-state checks construct the harness directly.

#include "harness.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qcgen::bench {
namespace {

/// Builds a mutable argv from string literals (Harness wants char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
    pointers_.push_back(nullptr);
  }
  int argc() const { return static_cast<int>(storage_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

Harness make(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  Argv argv(std::move(args));
  return Harness("test", argv.argc(), argv.argv(), {.samples = 5});
}

TEST(BenchHarness, DefaultsApplyWithoutFlags) {
  Harness harness = make({});
  EXPECT_EQ(harness.samples(), 5u);
  EXPECT_FALSE(harness.quick());
  EXPECT_EQ(harness.threads(), 0u);
  EXPECT_TRUE(harness.scenario().empty());
}

TEST(BenchHarness, ParsesTheFullFlagSet) {
  Harness harness = make({"--samples", "7", "--seed", "123", "--threads",
                          "4", "--scenario", "llm.generate=error(0.5)"});
  EXPECT_EQ(harness.samples(), 7u);
  EXPECT_EQ(harness.seed(), 123u);
  EXPECT_EQ(harness.threads(), 4u);
  EXPECT_EQ(harness.scenario(), "llm.generate=error(0.5)");
}

TEST(BenchHarness, QuickKeepsAnExplicitSamplesOverride) {
  Harness harness = make({"--quick", "--samples", "9"});
  EXPECT_TRUE(harness.quick());
  EXPECT_EQ(harness.samples(), 9u);
}

using BenchHarnessDeath = ::testing::Test;

TEST(BenchHarnessDeath, UnknownFlagExits2) {
  EXPECT_EXIT((void)make({"--wat"}), ::testing::ExitedWithCode(2),
              "unknown argument '--wat'");
}

TEST(BenchHarnessDeath, NegativeSamplesExits2) {
  // "-3" is flag-like, so it reads as a missing operand — either way it
  // must never wrap around to a huge sample count.
  EXPECT_EXIT((void)make({"--samples", "-3"}), ::testing::ExitedWithCode(2),
              "missing value for --samples");
}

TEST(BenchHarnessDeath, NonNumericSamplesExits2) {
  EXPECT_EXIT((void)make({"--samples", "abc"}), ::testing::ExitedWithCode(2),
              "bad value for --samples");
}

TEST(BenchHarnessDeath, TrailingGarbageInNumberExits2) {
  EXPECT_EXIT((void)make({"--seed", "12x"}), ::testing::ExitedWithCode(2),
              "bad value for --seed");
}

TEST(BenchHarnessDeath, OverflowingNumberExits2) {
  EXPECT_EXIT((void)make({"--seed", "99999999999999999999999"}),
              ::testing::ExitedWithCode(2), "bad value for --seed");
}

TEST(BenchHarnessDeath, MissingValueAtEndExits2) {
  EXPECT_EXIT((void)make({"--threads"}), ::testing::ExitedWithCode(2),
              "missing value for --threads");
}

TEST(BenchHarnessDeath, FlagEatingFlagExits2) {
  // `--samples --json` must not consume "--json" as the sample count.
  EXPECT_EXIT((void)make({"--samples", "--json"}),
              ::testing::ExitedWithCode(2), "missing value for --samples");
}

TEST(BenchHarnessDeath, ZeroSamplesExits2) {
  EXPECT_EXIT((void)make({"--samples", "0"}), ::testing::ExitedWithCode(2),
              "--samples must be >= 1");
}

TEST(BenchHarnessDeath, MalformedScenarioExits2) {
  EXPECT_EXIT((void)make({"--scenario", "llm.generate=explode"}),
              ::testing::ExitedWithCode(2), "bad --scenario");
}

TEST(BenchHarnessDeath, ScenarioProbabilityOutOfRangeExits2) {
  EXPECT_EXIT((void)make({"--scenario", "llm.generate=error(1.5)"}),
              ::testing::ExitedWithCode(2), "bad --scenario");
}

}  // namespace
}  // namespace qcgen::bench
