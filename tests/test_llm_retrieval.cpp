// Tests for the tokenizer, corpora, chunking and BM25 vector store.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "llm/corpus.hpp"
#include "llm/tokenizer.hpp"
#include "llm/vectorstore.hpp"

namespace qcgen::llm {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  const auto tokens = tokenize("Apply a Hadamard, then CX!");
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "hadamard"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "cx"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "Apply"), tokens.end());
}

TEST(Tokenizer, DottedIdentifiersKeepWholeAndParts) {
  const auto tokens = tokenize("import qiskit_ibm_runtime;");
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "qiskit_ibm_runtime"),
            tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "runtime"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "qiskit"), tokens.end());
}

TEST(Tokenizer, CountTokens) {
  EXPECT_EQ(count_tokens(""), 0u);
  EXPECT_EQ(count_tokens("one two three"), 3u);
}

TEST(Vocabulary, DocumentFrequencyAndIdf) {
  Vocabulary vocab;
  vocab.add_document("alpha beta");
  vocab.add_document("alpha gamma");
  EXPECT_EQ(vocab.num_documents(), 2u);
  EXPECT_EQ(vocab.document_frequency("alpha"), 2u);
  EXPECT_EQ(vocab.document_frequency("beta"), 1u);
  EXPECT_EQ(vocab.document_frequency("missing"), 0u);
  EXPECT_GT(vocab.idf("beta"), vocab.idf("alpha"));
}

TEST(Vocabulary, DuplicateTokensCountOncePerDocument) {
  Vocabulary vocab;
  vocab.add_document("word word word");
  EXPECT_EQ(vocab.document_frequency("word"), 1u);
}

TEST(Corpus, ApiCorpusStaleFractionControl) {
  const auto fresh = qiskit_api_corpus(0.0);
  for (const auto& doc : fresh) {
    EXPECT_EQ(doc.freshness, DocFreshness::kCurrent) << doc.id;
  }
  const auto mixed = qiskit_api_corpus(0.35);
  std::size_t stale = 0;
  for (const auto& doc : mixed) {
    if (doc.freshness == DocFreshness::kStale) ++stale;
  }
  const double fraction =
      static_cast<double>(stale) / static_cast<double>(mixed.size());
  EXPECT_NEAR(fraction, 0.35, 0.06);
  EXPECT_THROW(qiskit_api_corpus(1.5), InvalidArgumentError);
}

TEST(Corpus, HigherStaleFractionMeansMoreStaleDocs) {
  const auto low = qiskit_api_corpus(0.2);
  const auto high = qiskit_api_corpus(0.6);
  const auto count_stale = [](const std::vector<Document>& docs) {
    std::size_t n = 0;
    for (const auto& d : docs) {
      if (d.freshness == DocFreshness::kStale) ++n;
    }
    return n;
  };
  EXPECT_LT(count_stale(low), count_stale(high));
}

TEST(Corpus, GuideCorpusCoversEveryAlgorithm) {
  const auto guides = algorithm_guide_corpus();
  for (AlgorithmId id : all_algorithms()) {
    const bool found =
        std::any_of(guides.begin(), guides.end(),
                    [&](const Document& d) { return d.algorithm == id; });
    EXPECT_TRUE(found) << algorithm_name(id);
  }
}

TEST(Corpus, TokenAccounting) {
  const auto guides = algorithm_guide_corpus();
  EXPECT_GT(corpus_tokens(guides), 200u);
  EXPECT_EQ(corpus_tokens({}), 0u);
}

TEST(Chunking, BasicSplitsByWindow) {
  Document doc;
  doc.id = "d";
  doc.text.clear();
  for (int i = 0; i < 100; ++i) doc.text += "word" + std::to_string(i) + " ";
  const auto chunks = chunk_documents({doc}, ChunkStrategy::kBasic, 16);
  EXPECT_EQ(chunks.size(), 7u);  // ceil(100/16)
  EXPECT_THROW(chunk_documents({doc}, ChunkStrategy::kBasic, 2),
               InvalidArgumentError);
}

TEST(Chunking, StructureAwareKeepsSentences) {
  Document doc;
  doc.id = "d";
  doc.text = "First sentence about grover. Second sentence about qft. "
             "Third sentence about teleportation.";
  const auto chunks =
      chunk_documents({doc}, ChunkStrategy::kStructureAware, 12);
  for (const auto& chunk : chunks) {
    // Structure-aware chunks end at sentence boundaries.
    const auto trimmed = trim(chunk.text);
    EXPECT_EQ(trimmed.back(), '.') << chunk.text;
  }
}

TEST(Chunking, PropagatesMetadata) {
  const auto guides = algorithm_guide_corpus();
  const auto chunks = chunk_documents(guides, ChunkStrategy::kBasic, 32);
  bool found_grover = false;
  for (const auto& chunk : chunks) {
    if (chunk.algorithm == AlgorithmId::kGrover) found_grover = true;
  }
  EXPECT_TRUE(found_grover);
}

TEST(VectorStore, RetrievesRelevantGuide) {
  VectorStore store(
      chunk_documents(algorithm_guide_corpus(), ChunkStrategy::kBasic, 48));
  const auto hits = store.retrieve("grover search oracle diffusion", 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].chunk->algorithm, AlgorithmId::kGrover);
  // Scores are sorted descending.
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(VectorStore, TeleportationQueryFindsTeleportationGuide) {
  VectorStore store(chunk_documents(algorithm_guide_corpus(),
                                    ChunkStrategy::kStructureAware, 48));
  const auto hits = store.retrieve(
      "teleport a state using a bell pair and conditioned corrections", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].chunk->algorithm, AlgorithmId::kTeleportation);
}

TEST(VectorStore, NoMatchesForAlienQuery) {
  VectorStore store(
      chunk_documents(algorithm_guide_corpus(), ChunkStrategy::kBasic, 48));
  const auto hits = store.retrieve("zzzzz xxxxx qqqqq", 5);
  EXPECT_TRUE(hits.empty());
}

TEST(VectorStore, TopKLimit) {
  VectorStore store(
      chunk_documents(algorithm_guide_corpus(), ChunkStrategy::kBasic, 48));
  const auto hits = store.retrieve("quantum circuit measure qubit", 2);
  EXPECT_LE(hits.size(), 2u);
}

TEST(VectorStore, EmptyChunksRejected) {
  EXPECT_THROW(VectorStore({}), InvalidArgumentError);
}

TEST(VectorStore, EqualScoresTieBreakByChunkIndex) {
  // Five chunks with identical text score identically on any matching
  // query; the result order must be the stable chunk-index order, not an
  // artifact of the sort implementation or the doc-id strings.
  std::vector<Chunk> chunks;
  for (int i = 0; i < 5; ++i) {
    Chunk chunk;
    // Deliberately anti-sorted ids: index order != lexicographic order.
    chunk.doc_id = "doc-" + std::to_string(9 - i);
    chunk.text = "superposition entangle measure";
    chunks.push_back(chunk);
  }
  VectorStore store(std::move(chunks));
  const auto hits = store.retrieve("superposition entangle", 5);
  ASSERT_EQ(hits.size(), 5u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].score, hits[0].score);
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].chunk, &store.chunks()[i]) << i;
  }
}

TEST(VectorStore, StaleDocsCompeteOnGenericQueries) {
  // With a heavily stale corpus, generic import/run queries must surface
  // stale chunks — the mechanism behind the RAG staleness ablation.
  VectorStore store(chunk_documents(qiskit_api_corpus(0.6),
                                    ChunkStrategy::kBasic, 48));
  const auto hits =
      store.retrieve("import module run circuit simulator measure", 6);
  ASSERT_FALSE(hits.empty());
  const bool any_stale =
      std::any_of(hits.begin(), hits.end(), [](const Retrieved& r) {
        return r.chunk->freshness == DocFreshness::kStale;
      });
  EXPECT_TRUE(any_stale);
}

}  // namespace
}  // namespace qcgen::llm
