// Tests for the QasmLite tokenizer.

#include <gtest/gtest.h>

#include "qasm/lexer.hpp"

namespace qcgen::qasm {
namespace {

std::vector<TokenKind> kinds_of(const LexResult& result) {
  std::vector<TokenKind> out;
  for (const Token& t : result.tokens) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const LexResult r = lex("");
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kEof);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const LexResult r = lex("import circuit measure barrier reset if pi foo");
  const auto kinds = kinds_of(r);
  EXPECT_EQ(kinds[0], TokenKind::kKeywordImport);
  EXPECT_EQ(kinds[1], TokenKind::kKeywordCircuit);
  EXPECT_EQ(kinds[2], TokenKind::kKeywordMeasure);
  EXPECT_EQ(kinds[3], TokenKind::kKeywordBarrier);
  EXPECT_EQ(kinds[4], TokenKind::kKeywordReset);
  EXPECT_EQ(kinds[5], TokenKind::kKeywordIf);
  EXPECT_EQ(kinds[6], TokenKind::kKeywordPi);
  EXPECT_EQ(kinds[7], TokenKind::kIdentifier);
}

TEST(Lexer, MeasureAllIsOneToken) {
  const LexResult r = lex("measure_all;");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kKeywordMeasureAll);
  EXPECT_EQ(r.tokens[1].kind, TokenKind::kSemicolon);
}

TEST(Lexer, NumbersIncludingFloatsAndExponents) {
  const LexResult r = lex("3 0.25 1e3 2.5E-2");
  ASSERT_GE(r.tokens.size(), 4u);
  EXPECT_DOUBLE_EQ(r.tokens[0].number, 3.0);
  EXPECT_DOUBLE_EQ(r.tokens[1].number, 0.25);
  EXPECT_DOUBLE_EQ(r.tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(r.tokens[3].number, 0.025);
}

TEST(Lexer, ArrowVsMinus) {
  const LexResult r = lex("-> - 5");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kArrow);
  EXPECT_EQ(r.tokens[1].kind, TokenKind::kMinus);
  EXPECT_EQ(r.tokens[2].kind, TokenKind::kNumber);
}

TEST(Lexer, PunctuationCoverage) {
  const LexResult r = lex("()[]{},;:.+*/==");
  const auto kinds = kinds_of(r);
  const TokenKind expected[] = {
      TokenKind::kLParen,  TokenKind::kRParen,    TokenKind::kLBracket,
      TokenKind::kRBracket, TokenKind::kLBrace,   TokenKind::kRBrace,
      TokenKind::kComma,   TokenKind::kSemicolon, TokenKind::kColon,
      TokenKind::kDot,     TokenKind::kPlus,      TokenKind::kStar,
      TokenKind::kSlash,   TokenKind::kEqualEqual, TokenKind::kEof};
  ASSERT_EQ(kinds.size(), std::size(expected));
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(kinds[i], expected[i]) << "token " << i;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const LexResult r = lex("h q[0]; // trailing comment\n# full line\nx q[1];");
  std::size_t identifiers = 0;
  for (const Token& t : r.tokens) {
    if (t.kind == TokenKind::kIdentifier) ++identifiers;
  }
  EXPECT_EQ(identifiers, 4u);  // h, q, x, q
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Lexer, LineAndColumnTracking) {
  const LexResult r = lex("h q[0];\n  cx q[0], q[1];");
  // Second line starts with 'cx' at line 2, column 3.
  const Token* cx = nullptr;
  for (const Token& t : r.tokens) {
    if (t.text == "cx") cx = &t;
  }
  ASSERT_NE(cx, nullptr);
  EXPECT_EQ(cx->line, 2);
  EXPECT_EQ(cx->column, 3);
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  const LexResult r = lex("h q[0] @;");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, DiagCode::kLexError);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kError);
}

TEST(Lexer, SingleEqualsIsError) {
  const LexResult r = lex("a = b");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, DiagCode::kLexError);
}

TEST(Lexer, UnderscoredIdentifiers) {
  const LexResult r = lex("my_gate_2 q[0];");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(r.tokens[0].text, "my_gate_2");
}

TEST(DiagnosticHelpers, FormatErrorTrace) {
  std::vector<Diagnostic> diags(2);
  diags[0].code = DiagCode::kUnknownGate;
  diags[0].message = "unknown gate 'foo'";
  diags[0].line = 3;
  diags[0].column = 2;
  diags[1].severity = Severity::kWarning;
  diags[1].code = DiagCode::kUnusedQubit;
  diags[1].message = "qubit 1 unused";
  const std::string trace = format_error_trace(diags);
  EXPECT_NE(trace.find("error[unknown-gate] at line 3:2"), std::string::npos);
  EXPECT_NE(trace.find("warning[unused-qubit]"), std::string::npos);
  EXPECT_TRUE(has_errors(diags));
}

TEST(DiagnosticHelpers, SyntacticClassification) {
  EXPECT_TRUE(is_syntactic(DiagCode::kParseError));
  EXPECT_TRUE(is_syntactic(DiagCode::kDeprecatedImport));
  EXPECT_TRUE(is_syntactic(DiagCode::kWrongArity));
  EXPECT_FALSE(is_syntactic(DiagCode::kNoMeasurement));
  EXPECT_FALSE(is_syntactic(DiagCode::kUnusedQubit));
}

}  // namespace
}  // namespace qcgen::qasm
