// Tests for the stabilizer tableau simulator, including cross-validation
// against the dense state-vector simulator on Clifford circuits.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/statevector.hpp"
#include "sim/tableau.hpp"

namespace qcgen::sim {
namespace {

TEST(Tableau, InitialStabilizers) {
  Tableau tab(3);
  const auto stabs = tab.stabilizer_strings();
  ASSERT_EQ(stabs.size(), 3u);
  EXPECT_EQ(stabs[0], "+Z__");
  EXPECT_EQ(stabs[1], "+_Z_");
  EXPECT_EQ(stabs[2], "+__Z");
}

TEST(Tableau, MeasureZeroStateIsDeterministic) {
  Tableau tab(2);
  Rng rng(1);
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_FALSE(tab.deterministic_outcome(0));
  EXPECT_FALSE(tab.measure(0, rng));
}

TEST(Tableau, XFlipsMeasurement) {
  Tableau tab(1);
  tab.x(0);
  Rng rng(1);
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_TRUE(tab.deterministic_outcome(0));
  EXPECT_TRUE(tab.measure(0, rng));
}

TEST(Tableau, HadamardMakesMeasurementRandom) {
  Tableau tab(1);
  tab.h(0);
  EXPECT_FALSE(tab.is_deterministic(0));
  EXPECT_THROW(tab.deterministic_outcome(0), InvalidArgumentError);
  // After measurement, the outcome repeats deterministically.
  Rng rng(7);
  const bool first = tab.measure(0, rng);
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_EQ(tab.measure(0, rng), first);
}

TEST(Tableau, HadamardOutcomesAreBalanced) {
  Rng rng(11);
  int ones = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    Tableau tab(1);
    tab.h(0);
    ones += tab.measure(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.03);
}

TEST(Tableau, BellPairCorrelation) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Tableau tab(2);
    tab.h(0);
    tab.cx(0, 1);
    const bool a = tab.measure(0, rng);
    const bool b = tab.measure(1, rng);
    EXPECT_EQ(a, b);
  }
}

TEST(Tableau, GhzStabilizerStructure) {
  Tableau tab(3);
  tab.h(0);
  tab.cx(0, 1);
  tab.cx(1, 2);
  // Parity of any two qubits is +1 deterministically: ZZ_ stabilizer.
  EXPECT_EQ(tab.pauli_z_expectation({0, 1}), 1);
  EXPECT_EQ(tab.pauli_z_expectation({1, 2}), 1);
  EXPECT_EQ(tab.pauli_z_expectation({0, 2}), 1);
  // Single-qubit Z is random.
  EXPECT_EQ(tab.pauli_z_expectation({0}), 0);
}

TEST(Tableau, PauliGatesComposeToIdentity) {
  Tableau tab(1);
  tab.x(0);
  tab.y(0);
  tab.z(0);
  // XYZ = iI: global phase only, outcome deterministic zero.
  Rng rng(1);
  EXPECT_FALSE(tab.measure(0, rng));
}

TEST(Tableau, SdgIsInverseOfS) {
  Tableau tab(1);
  tab.h(0);
  tab.s(0);
  tab.sdg(0);
  tab.h(0);
  Rng rng(1);
  EXPECT_FALSE(tab.measure(0, rng));
}

TEST(Tableau, CzSymmetric) {
  // CZ is symmetric: conjugating X_0 gives X_0 Z_1 regardless of order.
  Tableau a(2), b(2);
  a.h(0);
  a.cz(0, 1);
  b.h(0);
  b.cz(1, 0);
  EXPECT_EQ(a.stabilizer_strings(), b.stabilizer_strings());
}

TEST(Tableau, SwapMovesState) {
  Tableau tab(2);
  tab.x(0);
  tab.swap(0, 1);
  Rng rng(1);
  EXPECT_FALSE(tab.measure(0, rng));
  EXPECT_TRUE(tab.measure(1, rng));
}

TEST(Tableau, ResetRestoresZero) {
  Tableau tab(1);
  tab.h(0);
  Rng rng(3);
  tab.reset(0, rng);
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_FALSE(tab.deterministic_outcome(0));
}

TEST(CliffordKernel, UnknownSignsPropagateSoundly) {
  CliffordTableau k(2);
  // Fresh qubits are deterministically |0>.
  EXPECT_TRUE(k.is_deterministic(0));
  EXPECT_EQ(k.deterministic_sign(0), SignBit::kZero);
  // Collapse a superposed qubit to an *unknown* computational state:
  // subsequent queries know the qubit is classical but not which bit.
  k.h(0);
  EXPECT_FALSE(k.is_deterministic(0));
  const auto r = k.measure_with(0, SignBit::kUnknown);
  EXPECT_TRUE(r.random);
  EXPECT_TRUE(k.is_deterministic(0));
  EXPECT_EQ(k.deterministic_sign(0), SignBit::kUnknown);
  // Unknown absorbs sign flips.
  k.x(0);
  EXPECT_EQ(k.deterministic_sign(0), SignBit::kUnknown);
  // Copying the unknown bit leaves each single-qubit outcome unknown,
  // but the joint parity Z0 Z1 is provably even — definite signs stay
  // exact even in a partially-unknown tableau.
  k.cx(0, 1);
  EXPECT_EQ(k.deterministic_sign(1), SignBit::kUnknown);
  const auto parity = k.pauli_z_sign({0, 1});
  EXPECT_TRUE(parity.deterministic);
  EXPECT_EQ(parity.sign, SignBit::kZero);
}

TEST(Tableau, RejectsNonClifford) {
  Tableau tab(1);
  Operation op;
  op.kind = GateKind::kT;
  op.qubits = {0};
  EXPECT_THROW(tab.apply(op), InvalidArgumentError);
}

TEST(Tableau, LargeRegisterWorks) {
  // Exercise the multi-word bit packing (> 64 qubits).
  const std::size_t n = 130;
  Tableau tab(n);
  tab.h(0);
  for (std::size_t q = 1; q < n; ++q) tab.cx(q - 1, q);
  Rng rng(17);
  const bool first = tab.measure(0, rng);
  for (std::size_t q = 1; q < n; ++q) {
    EXPECT_EQ(tab.measure(q, rng), first) << "qubit " << q;
  }
}

// Cross-validation: tableau vs state-vector on random Clifford circuits.
class CliffordCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CliffordCrossValidation, DistributionsAgree) {
  const int seed = GetParam();
  Rng circuit_rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 4;
  Circuit circuit(n, n);
  const GateKind pool[] = {GateKind::kH, GateKind::kS,  GateKind::kX,
                           GateKind::kZ, GateKind::kCX, GateKind::kCZ,
                           GateKind::kSwap};
  for (int i = 0; i < 24; ++i) {
    const GateKind kind = pool[circuit_rng.uniform_int(std::uint64_t{7})];
    Operation op;
    op.kind = kind;
    const std::size_t a = circuit_rng.uniform_int(std::uint64_t{n});
    if (gate_info(kind).num_qubits == 2) {
      std::size_t b = circuit_rng.uniform_int(std::uint64_t{n});
      while (b == a) b = circuit_rng.uniform_int(std::uint64_t{n});
      op.qubits = {a, b};
    } else {
      op.qubits = {a};
    }
    circuit.append(op);
  }
  circuit.measure_all();

  const Distribution exact = exact_distribution(circuit);

  // Tableau sampling.
  Counts tableau_counts;
  Tableau tab(n);
  Rng rng(99);
  const std::size_t shots = 20000;
  for (std::size_t s = 0; s < shots; ++s) {
    const auto bits = run_tableau_trajectory(circuit, tab, rng);
    std::string key(n, '0');
    for (std::size_t c = 0; c < n; ++c) {
      if (bits[c]) key[n - 1 - c] = '1';
    }
    ++tableau_counts[key];
  }
  EXPECT_LT(total_variation_distance(to_distribution(tableau_counts), exact),
            0.03)
      << circuit.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomCliffords, CliffordCrossValidation,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace qcgen::sim
