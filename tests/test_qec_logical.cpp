// Monte-Carlo logical-error-rate tests, lifetime model tests, and
// validation of the circuit-level syndrome extraction against the
// phenomenological model.

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "qec/lifetime.hpp"
#include "qec/logical_error.hpp"
#include "qec/syndrome_circuit.hpp"

namespace qcgen::qec {
namespace {

TEST(LogicalError, ZeroNoiseZeroFailures) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  LogicalErrorConfig config;
  config.noise = {0.0, 0.0};
  config.trials = 100;
  const auto estimate = estimate_logical_error(code, DecoderKind::kMwpm, config);
  EXPECT_EQ(estimate.failures, 0u);
  EXPECT_EQ(estimate.logical_error_rate, 0.0);
}

TEST(LogicalError, RateIncreasesWithPhysicalError) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  LogicalErrorConfig low;
  low.noise = {0.01, 0.01};
  low.trials = 1500;
  LogicalErrorConfig high = low;
  high.noise = {0.06, 0.06};
  const auto at_low = estimate_logical_error(code, DecoderKind::kMwpm, low);
  const auto at_high = estimate_logical_error(code, DecoderKind::kMwpm, high);
  EXPECT_LT(at_low.logical_error_rate, at_high.logical_error_rate);
}

TEST(LogicalError, DistanceHelpsBelowThreshold) {
  LogicalErrorConfig config;
  config.noise = {0.008, 0.008};
  config.trials = 2500;
  const auto d3 = estimate_logical_error(SurfaceCode::rotated(3),
                                         DecoderKind::kMwpm, config);
  const auto d5 = estimate_logical_error(SurfaceCode::rotated(5),
                                         DecoderKind::kMwpm, config);
  EXPECT_LE(d5.logical_error_rate, d3.logical_error_rate + 0.01);
}

TEST(LogicalError, MwpmNoWorseThanGreedy) {
  const SurfaceCode code = SurfaceCode::rotated(5);
  LogicalErrorConfig config;
  config.noise = {0.02, 0.02};
  config.trials = 1500;
  const auto mwpm = estimate_logical_error(code, DecoderKind::kMwpm, config);
  const auto greedy = estimate_logical_error(code, DecoderKind::kGreedy, config);
  EXPECT_LE(mwpm.logical_error_rate, greedy.logical_error_rate + 0.02);
}

TEST(LogicalError, DeterministicGivenSeed) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  LogicalErrorConfig config;
  config.noise = {0.03, 0.02};
  config.trials = 300;
  config.seed = 77;
  const auto a = estimate_logical_error(code, DecoderKind::kUnionFind, config);
  const auto b = estimate_logical_error(code, DecoderKind::kUnionFind, config);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.x_failures, b.x_failures);
}

TEST(LogicalError, PerRoundRateInversion) {
  LogicalErrorEstimate estimate;
  estimate.trials = 100;
  estimate.logical_error_rate = 0.2;
  const double per_round = estimate.per_round_rate(5);
  // (1 - r)^5 == 0.8
  EXPECT_NEAR(std::pow(1.0 - per_round, 5.0), 0.8, 1e-9);
  EXPECT_EQ(estimate.per_round_rate(0), 0.0);
}

TEST(LogicalError, ConfidenceIntervalBracketsRate) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  LogicalErrorConfig config;
  config.noise = {0.05, 0.05};
  config.trials = 800;
  const auto e = estimate_logical_error(code, DecoderKind::kMwpm, config);
  EXPECT_LE(e.confidence.lo, e.logical_error_rate);
  EXPECT_GE(e.confidence.hi, e.logical_error_rate);
}

TEST(DecodeHistory, RequiresMatchingDecoderTypes) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto z_dec = make_decoder(DecoderKind::kMwpm, code, PauliType::kZ);
  auto x_dec = make_decoder(DecoderKind::kMwpm, code, PauliType::kX);
  SyndromeHistory history(code.num_data_qubits());
  history.rounds = {measure_syndrome(code, history.frame)};
  EXPECT_THROW(decode_history(code, *x_dec, *z_dec, history),
               InvalidArgumentError);
  const auto outcome = decode_history(code, *z_dec, *x_dec, history);
  EXPECT_FALSE(outcome.x_flip);
  EXPECT_FALSE(outcome.z_flip);
}

TEST(Lifetime, ExtensionBelowThreshold) {
  const SurfaceCode code = SurfaceCode::rotated(5);
  LifetimeConfig config;
  config.trials = 1500;
  const LifetimeReport report = measure_lifetime(code, 0.004, config);
  EXPECT_GT(report.lifetime_extension, 1.0);
  EXPECT_LT(report.suppression_factor, 1.0);
  EXPECT_NEAR(report.physical_lifetime_rounds, 250.0, 1e-9);
}

TEST(Lifetime, SuppressionSaturatesAtOne) {
  // Far above threshold the code cannot help; suppression is capped at 1.
  const SurfaceCode code = SurfaceCode::rotated(3);
  LifetimeConfig config;
  config.trials = 400;
  const LifetimeReport report = measure_lifetime(code, 0.25, config);
  EXPECT_LE(report.suppression_factor, 1.0);
}

TEST(Lifetime, EffectiveNoiseScalesAllChannels) {
  LifetimeReport report;
  report.suppression_factor = 0.25;
  const sim::NoiseModel physical = sim::NoiseModel::ibm_brisbane();
  const sim::NoiseModel effective = qec_effective_noise(physical, report);
  EXPECT_NEAR(effective.depolarizing_2q, physical.depolarizing_2q * 0.25,
              1e-12);
  EXPECT_NEAR(effective.readout_error, physical.readout_error * 0.25, 1e-12);
}

TEST(Lifetime, InvalidInputsRejected) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  LifetimeConfig config;
  EXPECT_THROW(measure_lifetime(code, 0.0, config), InvalidArgumentError);
  EXPECT_THROW(measure_lifetime(code, 1.0, config), InvalidArgumentError);
}

// --- Circuit-level syndrome extraction (tableau-backed) ---------------

TEST(SyndromeCircuit, BuildShape) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  const SyndromeCircuit sc = build_syndrome_circuit(code, 2, false);
  EXPECT_EQ(sc.num_data, 9u);
  EXPECT_EQ(sc.num_ancilla, 8u);
  EXPECT_EQ(sc.circuit.num_qubits(), 17u);
  EXPECT_EQ(sc.circuit.num_clbits(), 16u);
  EXPECT_EQ(sc.clbit_of(3, 1), 11u);
}

TEST(SyndromeCircuit, NoiselessRunsAreEventFree) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  Rng rng(5);
  for (bool logical_one : {false, true}) {
    const SyndromeHistory history =
        run_syndrome_circuit(code, 3, 0.0, 0.0, logical_one, rng);
    EXPECT_TRUE(detection_events(history, PauliType::kX).empty());
    EXPECT_TRUE(detection_events(history, PauliType::kZ).empty());
  }
}

TEST(SyndromeCircuit, InjectedFrameMatchesPhenomenologicalSyndrome) {
  // The circuit-level extraction must report the same final syndrome as
  // measure_syndrome() applied to the tracked injected frame.
  const SurfaceCode code = SurfaceCode::rotated(3);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const SyndromeHistory history =
        run_syndrome_circuit(code, 2, 0.08, 0.0, false, rng);
    const Syndrome expected = measure_syndrome(code, history.frame);
    const Syndrome& final_round = history.rounds.back();
    EXPECT_EQ(final_round.x, expected.x) << "trial " << trial;
    EXPECT_EQ(final_round.z, expected.z) << "trial " << trial;
  }
}

TEST(SyndromeCircuit, DecodingCircuitLevelHistoriesWorks) {
  const SurfaceCode code = SurfaceCode::rotated(3);
  auto z_dec = make_decoder(DecoderKind::kMwpm, code, PauliType::kZ);
  auto x_dec = make_decoder(DecoderKind::kMwpm, code, PauliType::kX);
  Rng rng(13);
  std::size_t failures = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const SyndromeHistory history =
        run_syndrome_circuit(code, 3, 0.01, 0.01, true, rng);
    const auto outcome = decode_history(code, *z_dec, *x_dec, history);
    if (outcome.x_flip || outcome.z_flip) ++failures;
  }
  // At p = 0.01 the distance-3 code should protect most trials.
  EXPECT_LT(failures, trials / 4);
}

}  // namespace
}  // namespace qcgen::qec
