// Tests for device topologies, the three agents and the pipeline.

#include <gtest/gtest.h>

#include "agents/codegen_agent.hpp"
#include "agents/pipeline.hpp"
#include "agents/qec_agent.hpp"
#include "agents/semantic_agent.hpp"
#include "agents/topology.hpp"
#include "common/error.hpp"
#include "llm/templates.hpp"
#include "qasm/builder.hpp"
#include "qasm/printer.hpp"
#include "sim/statevector.hpp"

namespace qcgen::agents {
namespace {

TEST(Topology, LinearChain) {
  const DeviceTopology t = DeviceTopology::linear(5);
  EXPECT_EQ(t.num_qubits(), 5u);
  EXPECT_EQ(t.edges().size(), 4u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_TRUE(t.are_coupled(1, 2));
  EXPECT_FALSE(t.are_coupled(0, 4));
  EXPECT_EQ(t.max_surface_code_distance(), 0);
}

TEST(Topology, CouplingMapExportMatchesDevice) {
  const DeviceTopology t = DeviceTopology::linear(4);
  const qasm::lint::CouplingMap map = coupling_map(t);
  EXPECT_EQ(map.name, t.name());
  EXPECT_EQ(map.num_qubits, 4u);
  EXPECT_EQ(map.edges.size(), t.edges().size());
  EXPECT_TRUE(map.adjacent(1, 2));
  EXPECT_TRUE(map.adjacent(2, 1));
  EXPECT_FALSE(map.adjacent(0, 3));
}

TEST(Topology, GridStructure) {
  const DeviceTopology t = DeviceTopology::grid(3, 4);
  EXPECT_EQ(t.num_qubits(), 12u);
  // Edges: 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(t.edges().size(), 17u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.degree(0), 2u);   // corner
  EXPECT_EQ(t.degree(5), 4u);   // interior
}

TEST(Topology, GridSurfaceCodeCapacity) {
  EXPECT_EQ(DeviceTopology::grid(4, 4).max_surface_code_distance(), 0);
  EXPECT_EQ(DeviceTopology::grid(5, 5).max_surface_code_distance(), 3);
  EXPECT_EQ(DeviceTopology::grid(9, 9).max_surface_code_distance(), 5);
  EXPECT_EQ(DeviceTopology::grid(13, 13).max_surface_code_distance(), 7);
}

TEST(Topology, HeavyHexDegreeCap) {
  const DeviceTopology t = DeviceTopology::heavy_hex(2, 2);
  EXPECT_TRUE(t.is_connected());
  // Heavy-hex property: maximum degree 3.
  for (std::size_t q = 0; q < t.num_qubits(); ++q) {
    EXPECT_LE(t.degree(q), 3u) << "qubit " << q;
  }
}

TEST(Topology, BrisbaneShape) {
  const DeviceTopology t = DeviceTopology::ibm_brisbane();
  EXPECT_EQ(t.kind(), TopologyKind::kHeavyHex);
  EXPECT_NEAR(static_cast<double>(t.num_qubits()), 127.0, 5.0);
  EXPECT_TRUE(t.is_connected());
  EXPECT_FALSE(t.noise().is_ideal());
}

TEST(Topology, FullyConnected) {
  const DeviceTopology t = DeviceTopology::fully_connected(6);
  EXPECT_EQ(t.edges().size(), 15u);
  EXPECT_EQ(t.degree(3), 5u);
  EXPECT_GE(t.max_surface_code_distance(), 0);
}

TEST(TechniqueConfig, LabelsAndPresets) {
  using llm::ModelProfile;
  EXPECT_EQ(TechniqueConfig::base(ModelProfile::kStarCoder3B).label(), "base");
  EXPECT_EQ(TechniqueConfig::fine_tuned_only(ModelProfile::kStarCoder3B).label(),
            "ft");
  EXPECT_EQ(TechniqueConfig::with_rag(ModelProfile::kStarCoder3B).label(),
            "ft+rag");
  EXPECT_EQ(TechniqueConfig::with_cot(ModelProfile::kStarCoder3B).label(),
            "ft+cot");
  EXPECT_EQ(TechniqueConfig::with_scot(ModelProfile::kStarCoder3B).label(),
            "ft+scot");
  EXPECT_EQ(TechniqueConfig::with_multipass(ModelProfile::kStarCoder3B, 3)
                .label(),
            "ft+mp3");
}

TEST(CodeGenAgent, GeneratesParsableTextForStrongModels) {
  TechniqueConfig config = TechniqueConfig::base(llm::ModelProfile::kGranite20B);
  CodeGenAgent agent(config, 3);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kBellPair;
  int parse_ok = 0;
  for (int i = 0; i < 40; ++i) {
    const auto result = agent.generate(task, 0);
    if (qasm::parse(result.source).ok()) ++parse_ok;
  }
  EXPECT_GT(parse_ok, 30);
}

TEST(CodeGenAgent, RagStoresOnlyBuiltWhenEnabled) {
  CodeGenAgent plain(TechniqueConfig::fine_tuned_only(
                         llm::ModelProfile::kStarCoder3B),
                     5);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kGrover;
  const auto no_rag = plain.generate(task, 0);
  EXPECT_EQ(no_rag.retrieval.api_hits, 0u);

  CodeGenAgent ragged(TechniqueConfig::with_rag(llm::ModelProfile::kStarCoder3B),
                      5);
  const auto with_rag = ragged.generate(task, 0);
  EXPECT_GT(with_rag.retrieval.api_hits, 0u);
}

TEST(CodeGenAgent, RejectsZeroPasses) {
  TechniqueConfig config;
  config.max_passes = 0;
  EXPECT_THROW(CodeGenAgent(config, 1), InvalidArgumentError);
}

TEST(SemanticAgent, AnalyzeSeparatesGoodAndBad) {
  const SemanticAnalyzerAgent agent;
  const auto good = agent.analyze(
      "import qiskit; circuit main(q: 2, c: 2) { h q[0]; cx q[0], q[1]; "
      "measure_all; }");
  EXPECT_TRUE(good.syntactic_ok);
  ASSERT_TRUE(good.circuit.has_value());
  EXPECT_EQ(good.circuit->num_qubits(), 2u);

  const auto bad = agent.analyze("circuit main(q: 1) { frobnicate q[0]; }");
  EXPECT_FALSE(bad.syntactic_ok);
  EXPECT_FALSE(bad.error_trace.empty());
  EXPECT_FALSE(bad.circuit.has_value());
}

TEST(SemanticAgent, BehaviorCheckAgainstReference) {
  const SemanticAnalyzerAgent agent;
  const sim::Circuit bell = sim::circuits::bell_pair();
  const sim::Distribution reference = sim::exact_distribution(bell);
  const auto match = agent.check_behavior(bell, reference);
  EXPECT_TRUE(match.matches);
  EXPECT_NEAR(match.tvd, 0.0, 1e-9);

  const sim::Circuit ghz = sim::circuits::ghz(2);
  sim::Circuit wrong(2, 2);
  wrong.x(0);
  wrong.measure_all();
  const auto mismatch = agent.check_behavior(wrong, reference);
  EXPECT_FALSE(mismatch.matches);
  EXPECT_GT(mismatch.tvd, 0.5);
}

TEST(SemanticAgent, EmptyReferenceNeverMatches) {
  const SemanticAnalyzerAgent agent;
  const auto report =
      agent.check_behavior(sim::circuits::bell_pair(), sim::Distribution{});
  EXPECT_TRUE(report.checked);
  EXPECT_FALSE(report.matches);
}

TEST(SemanticAgent, OptionValidation) {
  SemanticAnalyzerAgent::Options options;
  options.tvd_threshold = 0.0;
  EXPECT_THROW(SemanticAnalyzerAgent{options}, InvalidArgumentError);
}

TEST(QecAgent, InfeasibleOnLinearDevice) {
  const QecDecoderAgent agent;
  const QecPlan plan = agent.plan_for(DeviceTopology::linear(20));
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.reason.find("linear"), std::string::npos);
}

TEST(QecAgent, FeasiblePlanOnGrid) {
  DeviceTopology grid = DeviceTopology::grid(5, 5);
  grid.set_noise(sim::NoiseModel::ibm_brisbane());
  QecDecoderAgent::Options options;
  options.trials = 400;
  const QecDecoderAgent agent(options);
  const QecPlan plan = agent.plan_for(grid);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.distance, 3);
  EXPECT_GT(plan.synthesis_cost, 0.0);
  EXPECT_LE(plan.effective_noise.depolarizing_2q,
            plan.physical_noise.depolarizing_2q);
  auto [z_dec, x_dec] = QecDecoderAgent::build_decoders(plan);
  EXPECT_EQ(z_dec->stabilizer_type(), qec::PauliType::kZ);
  EXPECT_EQ(x_dec->stabilizer_type(), qec::PauliType::kX);
}

TEST(QecAgent, HeavyHexCostsMoreThanGrid) {
  QecDecoderAgent::Options options;
  options.trials = 400;
  const QecDecoderAgent agent(options);
  DeviceTopology grid = DeviceTopology::grid(9, 9);
  grid.set_noise(sim::NoiseModel::ibm_brisbane());
  DeviceTopology hex = DeviceTopology::ibm_brisbane();
  const QecPlan grid_plan = agent.plan_for(grid);
  const QecPlan hex_plan = agent.plan_for(hex);
  ASSERT_TRUE(grid_plan.feasible);
  ASSERT_TRUE(hex_plan.feasible);
  EXPECT_GT(hex_plan.synthesis_cost, grid_plan.synthesis_cost);
}

TEST(QecAgent, OptionValidation) {
  QecDecoderAgent::Options options;
  options.target_distance = 4;
  EXPECT_THROW(QecDecoderAgent{options}, InvalidArgumentError);
  options.target_distance = 3;
  options.trials = 10;
  EXPECT_THROW(QecDecoderAgent{options}, InvalidArgumentError);
}

TEST(QecAgent, BuildDecodersRejectsInfeasiblePlan) {
  QecPlan plan;
  plan.feasible = false;
  EXPECT_THROW(QecDecoderAgent::build_decoders(plan), InvalidArgumentError);
}

TEST(Pipeline, PerfectModelSucceedsFirstPass) {
  TechniqueConfig config = TechniqueConfig::base(llm::ModelProfile::kGranite20B);
  MultiAgentPipeline pipeline(config, SemanticAnalyzerAgent::Options(),
                              std::nullopt, std::nullopt, 23);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kBellPair;
  const sim::Distribution reference =
      sim::exact_distribution(sim::circuits::bell_pair());
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    const auto result = pipeline.run(task, reference, 0);
    EXPECT_EQ(result.trace.size(), static_cast<std::size_t>(result.passes_used));
    if (result.semantic_ok) ++successes;
  }
  EXPECT_GT(successes, 12);
}

TEST(Pipeline, StaticOnlyModeWithoutReference) {
  TechniqueConfig config =
      TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  MultiAgentPipeline pipeline(config, SemanticAnalyzerAgent::Options(),
                              std::nullopt, std::nullopt, 29);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kGhz;
  task.params = {{"n", 3}};
  const auto result = pipeline.run(task, sim::Distribution{}, 0);
  // With no reference, semantic verdict mirrors syntactic validity.
  EXPECT_EQ(result.semantic_ok, result.syntactic_ok);
}

TEST(Pipeline, MultiPassUsesExtraPassesOnlyOnFailure) {
  TechniqueConfig config =
      TechniqueConfig::with_multipass(llm::ModelProfile::kStarCoder3B, 4);
  MultiAgentPipeline pipeline(config, SemanticAnalyzerAgent::Options(),
                              std::nullopt, std::nullopt, 31);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kSuperposition;
  task.params = {{"n", 2}};
  llm::TaskSpec spec = task;
  const sim::Distribution reference = sim::exact_distribution(
      qasm::build_circuit(llm::gold_program(spec)));
  for (int i = 0; i < 10; ++i) {
    const auto result = pipeline.run(task, reference, 0);
    EXPECT_GE(result.passes_used, 1);
    EXPECT_LE(result.passes_used, 4);
    if (result.semantic_ok && result.passes_used < 4) {
      EXPECT_TRUE(result.trace.back().semantic_ok);
    }
  }
}

TEST(Pipeline, QecStageRunsOnlyOnSemanticSuccess) {
  TechniqueConfig config = TechniqueConfig::base(llm::ModelProfile::kGranite20B);
  QecDecoderAgent::Options qec_options;
  qec_options.trials = 400;
  DeviceTopology device = DeviceTopology::grid(5, 5);
  device.set_noise(sim::NoiseModel::ibm_brisbane());
  MultiAgentPipeline pipeline(config, SemanticAnalyzerAgent::Options(),
                              qec_options, device, 37);
  llm::TaskSpec task;
  task.algorithm = llm::AlgorithmId::kBellPair;
  const sim::Distribution reference =
      sim::exact_distribution(sim::circuits::bell_pair());
  bool saw_qec = false;
  for (int i = 0; i < 20 && !saw_qec; ++i) {
    const auto result = pipeline.run(task, reference, 0);
    if (result.semantic_ok) {
      ASSERT_TRUE(result.qec.has_value());
      EXPECT_TRUE(result.qec->feasible);
      saw_qec = true;
    } else {
      EXPECT_FALSE(result.qec.has_value());
    }
  }
  EXPECT_TRUE(saw_qec);
}

}  // namespace
}  // namespace qcgen::agents
