// Determinism tests for the parallel evaluation engine (eval/parallel.hpp,
// eval/runner.hpp): the same experiment must produce bit-identical
// reports at any thread count, because every (case, sample) trial draws
// from an independent RNG stream.

#include "eval/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/trace.hpp"
#include "eval/runner.hpp"
#include "eval/suite.hpp"

namespace qcgen::eval {
namespace {

std::vector<TestCase> small_suite() {
  const auto full = semantic_suite();
  // A subsample keeps the matrix cheap while still crossing algorithm
  // tiers (every third case).
  std::vector<TestCase> cases;
  for (std::size_t i = 0; i < full.size(); i += 3) cases.push_back(full[i]);
  return cases;
}

TEST(TrialSeed, StreamsAreDistinctAcrossTheMatrix) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 64; ++c) {
    for (std::uint64_t s = 0; s < 64; ++s) {
      seen.insert(trial_seed(2025, c, s));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(TrialSeed, DependsOnEveryInput) {
  const std::uint64_t base = trial_seed(1, 2, 3);
  EXPECT_NE(base, trial_seed(2, 2, 3));
  EXPECT_NE(base, trial_seed(1, 3, 3));
  EXPECT_NE(base, trial_seed(1, 2, 4));
  // (case, sample) must not be interchangeable.
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 3, 2));
}

TEST(RunTrialMatrix, ResultsComeBackInRowMajorOrder) {
  const auto suite = small_suite();
  RunnerOptions options;
  options.seed = 11;
  options.threads = 2;
  const auto trials = run_trial_matrix(
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B),
      suite, 2, options).trials;
  ASSERT_EQ(trials.size(), suite.size() * 2);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].case_idx, i / 2);
    EXPECT_EQ(trials[i].sample_idx, i % 2);
  }
}

TEST(RunTrialMatrix, BitIdenticalAcrossThreadCounts) {
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::with_multipass(llm::ModelProfile::kStarCoder3B, 3);

  RunnerOptions serial;
  serial.seed = 2025;
  serial.threads = 1;
  RunnerOptions wide = serial;
  wide.threads = 8;

  const auto a = run_trial_matrix(technique, suite, 3, serial).trials;
  const auto b = run_trial_matrix(technique, suite, 3, wide).trials;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].case_idx, b[i].case_idx);
    EXPECT_EQ(a[i].sample_idx, b[i].sample_idx);
    EXPECT_EQ(a[i].pipeline.syntactic_ok, b[i].pipeline.syntactic_ok)
        << "trial " << i;
    EXPECT_EQ(a[i].pipeline.semantic_ok, b[i].pipeline.semantic_ok)
        << "trial " << i;
    EXPECT_EQ(a[i].pipeline.passes_used, b[i].pipeline.passes_used)
        << "trial " << i;
    EXPECT_EQ(a[i].pipeline.generation.source,
              b[i].pipeline.generation.source)
        << "trial " << i;
  }
}

TEST(EvaluateTechnique, ReportIdenticalAtAnyThreadCount) {
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::with_scot(llm::ModelProfile::kStarCoder3B);

  RunnerOptions serial;
  serial.samples_per_case = 3;
  serial.seed = 42;
  serial.threads = 1;
  RunnerOptions wide = serial;
  wide.threads = 8;

  const AccuracyReport a = evaluate_technique(technique, suite, serial);
  const AccuracyReport b = evaluate_technique(technique, suite, wide);
  EXPECT_EQ(a.syntactic_rate, b.syntactic_rate);
  EXPECT_EQ(a.semantic_rate, b.semantic_rate);
  EXPECT_EQ(a.mean_passes_used, b.mean_passes_used);
  EXPECT_EQ(a.semantic_ci.lo, b.semantic_ci.lo);
  EXPECT_EQ(a.semantic_ci.hi, b.semantic_ci.hi);
  EXPECT_EQ(a.semantic_by_tier, b.semantic_by_tier);
}

TEST(EvaluateTechnique, TraceSummaryIdenticalAtAnyThreadCount) {
  // The deterministic trace summary — span counts, counters, histogram
  // aggregates — must be bit-identical at --threads 1 vs 8: per-trial
  // sinks merge in trial index order, never in completion order.
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::with_multipass(llm::ModelProfile::kStarCoder3B, 3);

  RunnerOptions serial;
  serial.samples_per_case = 2;
  serial.seed = 2025;
  serial.threads = 1;
  trace::TraceSink serial_sink;
  serial.trace = &serial_sink;

  RunnerOptions wide = serial;
  wide.threads = 8;
  trace::TraceSink wide_sink;
  wide.trace = &wide_sink;

  const AccuracyReport a = evaluate_technique(technique, suite, serial);
  const AccuracyReport b = evaluate_technique(technique, suite, wide);

  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(serial_sink.summary(), wide_sink.summary());
  // Serialized form too: the bench harness compares reports as JSON.
  EXPECT_EQ(serial_sink.summary_json().dump(), wide_sink.summary_json().dump());
#if QCGEN_TRACE_ENABLED
  // The pipeline instrumentation actually fired (one run span per
  // trial); under -DQCGEN_TRACE=OFF the summaries are empty by design.
  EXPECT_FALSE(a.trace.empty());
  const auto& spans = serial_sink.summary().span_counts;
  const auto it = spans.find("pipeline.run");
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->second, suite.size() * 2);
#endif
}

TEST(EvaluateTechnique, UntracedRunLeavesSummaryEmpty) {
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  RunnerOptions options;
  options.samples_per_case = 1;
  const AccuracyReport report = evaluate_technique(technique, suite, options);
  EXPECT_TRUE(report.trace.empty());
}

TEST(EvaluatePassAtK, IdenticalAtAnyThreadCount) {
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);

  RunnerOptions serial;
  serial.seed = 7;
  serial.threads = 1;
  RunnerOptions wide = serial;
  wide.threads = 8;

  const double a = evaluate_pass_at_k(technique, suite, 4, 2, serial);
  const double b = evaluate_pass_at_k(technique, suite, 4, 2, wide);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

TEST(EvaluateTechnique, DifferentSeedsProduceIndependentRuns) {
  // Sanity check that the seed actually feeds the trial streams (a bug
  // that ignored it would trivially pass the determinism tests).
  const auto suite = small_suite();
  const auto technique =
      agents::TechniqueConfig::fine_tuned_only(llm::ModelProfile::kStarCoder3B);
  RunnerOptions x;
  x.samples_per_case = 2;
  x.seed = 1;
  RunnerOptions y = x;
  y.seed = 999;
  const auto a = run_trial_matrix(technique, suite, 2, x).trials;
  const auto b = run_trial_matrix(technique, suite, 2, y).trials;
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pipeline.generation.source !=
        b[i].pipeline.generation.source) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace qcgen::eval
