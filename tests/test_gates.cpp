// Unit tests for the gate registry and matrix construction.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "sim/gates.hpp"

namespace qcgen::sim {
namespace {

constexpr double kEps = 1e-12;

bool is_unitary(const Matrix2& u) {
  // U * U^dagger == I
  const Complex a = u[0] * std::conj(u[0]) + u[1] * std::conj(u[1]);
  const Complex b = u[0] * std::conj(u[2]) + u[1] * std::conj(u[3]);
  const Complex c = u[2] * std::conj(u[0]) + u[3] * std::conj(u[1]);
  const Complex d = u[2] * std::conj(u[2]) + u[3] * std::conj(u[3]);
  return std::abs(a - Complex(1, 0)) < 1e-10 && std::abs(b) < 1e-10 &&
         std::abs(c) < 1e-10 && std::abs(d - Complex(1, 0)) < 1e-10;
}

TEST(GateInfo, NamesRoundTrip) {
  for (GateKind kind : all_gate_kinds()) {
    GateKind parsed;
    ASSERT_TRUE(parse_gate_name(gate_name(kind), parsed))
        << "failed for " << gate_name(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(GateInfo, LegacyAliasesResolve) {
  GateKind kind;
  ASSERT_TRUE(parse_gate_name("cnot", kind));
  EXPECT_EQ(kind, GateKind::kCX);
  ASSERT_TRUE(parse_gate_name("toffoli", kind));
  EXPECT_EQ(kind, GateKind::kCCX);
  ASSERT_TRUE(parse_gate_name("u3", kind));
  EXPECT_EQ(kind, GateKind::kU);
  ASSERT_TRUE(parse_gate_name("fredkin", kind));
  EXPECT_EQ(kind, GateKind::kCSwap);
}

TEST(GateInfo, UnknownNamesRejected) {
  GateKind kind;
  EXPECT_FALSE(parse_gate_name("hadamard", kind));
  EXPECT_FALSE(parse_gate_name("", kind));
  EXPECT_FALSE(parse_gate_name("u2", kind));
}

TEST(GateInfo, ArityAndParams) {
  EXPECT_EQ(gate_info(GateKind::kH).num_qubits, 1);
  EXPECT_EQ(gate_info(GateKind::kCX).num_qubits, 2);
  EXPECT_EQ(gate_info(GateKind::kCCX).num_qubits, 3);
  EXPECT_EQ(gate_info(GateKind::kBarrier).num_qubits, -1);
  EXPECT_EQ(gate_info(GateKind::kRZ).num_params, 1);
  EXPECT_EQ(gate_info(GateKind::kU).num_params, 3);
  EXPECT_FALSE(gate_info(GateKind::kMeasure).unitary);
  EXPECT_TRUE(gate_info(GateKind::kH).clifford);
  EXPECT_FALSE(gate_info(GateKind::kT).clifford);
}

class UnitaryGateTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(UnitaryGateTest, MatrixIsUnitary) {
  const GateKind kind = GetParam();
  const GateInfo& gi = gate_info(kind);
  std::vector<double> params(static_cast<std::size_t>(gi.num_params), 0.7);
  EXPECT_TRUE(is_unitary(gate_matrix_1q(kind, params)))
      << "gate " << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    All1QGates, UnitaryGateTest,
    ::testing::Values(GateKind::kI, GateKind::kX, GateKind::kY, GateKind::kZ,
                      GateKind::kH, GateKind::kS, GateKind::kSdg, GateKind::kT,
                      GateKind::kTdg, GateKind::kSX, GateKind::kRX,
                      GateKind::kRY, GateKind::kRZ, GateKind::kPhase,
                      GateKind::kU),
    [](const auto& info) { return std::string(gate_name(info.param)); });

TEST(GateMatrix, HadamardKnownValues) {
  const Matrix2 h = gate_matrix_1q(GateKind::kH, {});
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(h[0].real(), inv_sqrt2, kEps);
  EXPECT_NEAR(h[3].real(), -inv_sqrt2, kEps);
}

TEST(GateMatrix, SSquaredEqualsZ) {
  const Matrix2 s = gate_matrix_1q(GateKind::kS, {});
  // S^2 diagonal: 1, i*i = -1.
  EXPECT_NEAR((s[3] * s[3]).real(), -1.0, kEps);
}

TEST(GateMatrix, RxPiEqualsMinusIX) {
  const Matrix2 rx = gate_matrix_1q(GateKind::kRX, {{std::acos(-1.0)}});
  EXPECT_NEAR(std::abs(rx[0]), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(rx[1]), 1.0, 1e-10);
}

TEST(GateMatrix, UGeneralisesOthers) {
  const double pi = std::acos(-1.0);
  // u(pi/2, 0, pi) == H up to global phase.
  const Matrix2 u = gate_matrix_1q(GateKind::kU, {{pi / 2, 0.0, pi}});
  const Matrix2 h = gate_matrix_1q(GateKind::kH, {});
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(u[i] - h[i]), 0.0, 1e-10);
  }
}

TEST(GateMatrix, RejectsWrongParamCount) {
  EXPECT_THROW(gate_matrix_1q(GateKind::kRZ, {}), InvalidArgumentError);
  EXPECT_THROW(gate_matrix_1q(GateKind::kH, {{1.0}}), InvalidArgumentError);
}

TEST(GateMatrix, RejectsNonUnitaryKinds) {
  EXPECT_THROW(gate_matrix_1q(GateKind::kMeasure, {}), InvalidArgumentError);
  EXPECT_THROW(gate_matrix_1q(GateKind::kCX, {}), InvalidArgumentError);
}

TEST(ControlledTarget, MapsToExpectedMatrices) {
  const Matrix2 x = controlled_target_matrix(GateKind::kCX, {});
  EXPECT_NEAR(std::abs(x[1] - Complex(1, 0)), 0.0, kEps);
  const Matrix2 z = controlled_target_matrix(GateKind::kCZ, {});
  EXPECT_NEAR(std::abs(z[3] - Complex(-1, 0)), 0.0, kEps);
  EXPECT_THROW(controlled_target_matrix(GateKind::kH, {}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace qcgen::sim
