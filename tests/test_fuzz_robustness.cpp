// Robustness sweeps: the language front-end must handle arbitrarily
// corrupted program text without crashing, hanging or emitting unbounded
// diagnostics (the pipeline feeds it model-corrupted text constantly),
// and the simulators must maintain their invariants on random circuits.

#include <gtest/gtest.h>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "llm/simlm.hpp"
#include "llm/templates.hpp"
#include "qasm/analyzer.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "sim/statevector.hpp"

namespace qcgen {
namespace {

/// Applies `count` random single-character edits (delete/insert/replace).
std::string mutate(std::string text, int count, Rng& rng) {
  const std::string alphabet = "abcxyz0189[](){};,->==.#/ \n\"'@";
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos = rng.uniform_int(
        static_cast<std::uint64_t>(text.size()));
    switch (rng.uniform_int(static_cast<std::uint64_t>(3))) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1,
                    alphabet[rng.uniform_int(
                        static_cast<std::uint64_t>(alphabet.size()))]);
        break;
      default:
        text[pos] = alphabet[rng.uniform_int(
            static_cast<std::uint64_t>(alphabet.size()))];
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, NeverCrashesAndBoundsDiagnostics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto algorithms = llm::all_algorithms();
  for (int trial = 0; trial < 60; ++trial) {
    llm::TaskSpec task;
    task.algorithm = algorithms[rng.uniform_int(
        static_cast<std::uint64_t>(algorithms.size()))];
    const std::string source =
        qasm::print_program(llm::gold_program(task));
    const int edits = 1 + static_cast<int>(rng.uniform_int(
                              static_cast<std::uint64_t>(20)));
    const std::string mutated = mutate(source, edits, rng);

    const qasm::ParseResult parsed = qasm::parse(mutated);
    // Diagnostics must stay proportional to the input, never explode
    // (regression guard for the stray-top-level-token loop).
    EXPECT_LT(parsed.diagnostics.size(), mutated.size() + 16);
    if (parsed.program.has_value()) {
      const auto report = qasm::analyze(*parsed.program);
      EXPECT_LT(report.diagnostics.size(), 200u);
      // Fix-its emitted on corrupted programs must apply (or refuse)
      // without crashing, and the patched text must still be parseable
      // input for the front-end (not necessarily error-free).
      const qasm::FixItResult fixed =
          qasm::apply_fixits(mutated, report.diagnostics);
      const auto repaired = qasm::parse(fixed.source);
      EXPECT_LT(repaired.diagnostics.size(), fixed.source.size() + 16);
      // The lint driver must also hold up with fix-its stripped and with
      // the dataflow group disabled (the two config paths benches use).
      qasm::AnalyzerOptions quiet;
      quiet.emit_fixits = false;
      quiet.dataflow_lints = false;
      const auto quiet_report =
          qasm::analyze(*parsed.program, qasm::LanguageRegistry::current(),
                        quiet);
      EXPECT_LE(quiet_report.diagnostics.size(), report.diagnostics.size());
      // The abstract interpreter must survive whatever parsed — with the
      // passes off (ablation path) and with a device topology committed
      // (topology-conformance active).
      qasm::AnalyzerOptions no_abstract;
      no_abstract.abstract_lints = false;
      const auto no_abstract_report = qasm::analyze(
          *parsed.program, qasm::LanguageRegistry::current(), no_abstract);
      EXPECT_LE(no_abstract_report.diagnostics.size(),
                report.diagnostics.size());
      qasm::AnalyzerOptions with_topology;
      with_topology.topology =
          qasm::lint::CouplingMap{"linear-3", 3, {{0, 1}, {1, 2}}};
      qasm::analyze(*parsed.program, qasm::LanguageRegistry::current(),
                    with_topology);  // must not throw
      // Printing whatever parsed must itself re-parse.
      const std::string reprinted = qasm::print_program(*parsed.program);
      const auto again = qasm::parse(reprinted);
      EXPECT_TRUE(again.program.has_value())
          << "print->parse broke on:\n" << reprinted;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

TEST(ParserFuzz, PathologicalInputs) {
  // Hand-picked nasties.
  const char* inputs[] = {
      "",
      ";;;;;;;;",
      "}}}}}}{{{{{",
      "import ;",
      "import .....;",
      "circuit",
      "circuit m(",
      "circuit m(q: 999999999999) { h q[0]; }",
      "circuit m(q: 2) { rz() q[0]; }",
      "circuit m(q: 2) { rz(((((1)))) q[0]; }",
      "circuit m(q: 2) { if (c[0] == 1) if (c[1] == 0) x q[0]; }",
      "measure q[0] -> c[0];",
      "import qiskit; circuit m(q: 1) { h q[0]; } circuit m(q: 1) { }",
      "// only a comment",
      "\n\n\n\n",
      "circuit m(q: 1) { h q[0]; }  trailing garbage !!!",
  };
  for (const char* input : inputs) {
    const qasm::ParseResult parsed = qasm::parse(input);
    EXPECT_LT(parsed.diagnostics.size(), 64u) << input;
    if (parsed.program.has_value()) {
      qasm::analyze(*parsed.program);  // must not throw
    }
  }
}

TEST(SimLmFuzz, GeneratedSourcesAlwaysAnalyzable) {
  // Whatever the model emits — however corrupted — the analyzer pipeline
  // must produce a verdict without throwing.
  llm::SimLM model(llm::base_knowledge(llm::ModelProfile::kStarCoder3B),
                   424242);
  const auto algorithms = llm::all_algorithms();
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    llm::TaskSpec task;
    task.algorithm = algorithms[rng.uniform_int(
        static_cast<std::uint64_t>(algorithms.size()))];
    const auto result = model.generate(task, llm::GenerationContext{});
    const auto parsed = qasm::parse(result.source);
    if (parsed.program.has_value()) {
      const auto report = qasm::analyze(*parsed.program);
      (void)report;
    }
  }
  SUCCEED();
}

class RandomCircuitInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitInvariants, NormPreservedAndDistributionsSane) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t n = 2 + rng.uniform_int(static_cast<std::uint64_t>(4));
  sim::Circuit circuit(n, n);
  const sim::GateKind pool[] = {
      sim::GateKind::kH,  sim::GateKind::kX,  sim::GateKind::kT,
      sim::GateKind::kRY, sim::GateKind::kCX, sim::GateKind::kCZ,
      sim::GateKind::kSwap};
  for (int i = 0; i < 40; ++i) {
    const sim::GateKind kind =
        pool[rng.uniform_int(static_cast<std::uint64_t>(7))];
    sim::Operation op;
    op.kind = kind;
    const std::size_t a = rng.uniform_int(static_cast<std::uint64_t>(n));
    if (sim::gate_info(kind).num_qubits == 2) {
      std::size_t b = rng.uniform_int(static_cast<std::uint64_t>(n));
      while (b == a) b = rng.uniform_int(static_cast<std::uint64_t>(n));
      op.qubits = {a, b};
    } else {
      op.qubits = {a};
    }
    for (int p = 0; p < sim::gate_info(kind).num_params; ++p) {
      op.params.push_back(rng.uniform(-3.14, 3.14));
    }
    circuit.append(op);
  }
  circuit.measure_all();

  // Invariant 1: unitary evolution preserves the norm.
  sim::Circuit unitary_only(n, n);
  for (const auto& op : circuit.operations()) {
    if (op.kind != sim::GateKind::kMeasure) unitary_only.append(op);
  }
  const sim::StateVector state = sim::run_statevector(unitary_only);
  EXPECT_NEAR(state.norm(), 1.0, 1e-9);

  // Invariant 2: the exact distribution is a probability distribution.
  const sim::Distribution dist = sim::exact_distribution(circuit);
  double total = 0.0;
  for (const auto& [key, p] : dist) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    EXPECT_EQ(key.size(), n);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Invariant 3: sampled counts converge to the exact distribution.
  const Counts counts = sim::run_ideal(circuit, sim::RunOptions{20000, 3});
  EXPECT_LT(total_variation_distance(sim::to_distribution(counts), dist),
            0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitInvariants,
                         ::testing::Range(1, 11));

/// try_parse must either accept a spec or reject it cleanly — never
/// crash — and every accepted spec must survive a canonical round-trip.
void check_scenario_input(const std::string& spec) {
  std::string error;
  const auto parsed = failpoint::Scenario::try_parse(spec, &error);
  if (!parsed.has_value()) {
    EXPECT_FALSE(error.empty()) << "rejected without a reason: " << spec;
    return;
  }
  const std::string canonical = parsed->canonical();
  const auto reparsed = failpoint::Scenario::try_parse(canonical, &error);
  ASSERT_TRUE(reparsed.has_value())
      << "canonical form of '" << spec << "' rejected: " << error;
  EXPECT_EQ(*parsed, *reparsed) << spec;
  EXPECT_EQ(reparsed->canonical(), canonical) << spec;
}

TEST(ScenarioParserFuzz, RandomByteStringsNeverCrashTheParser) {
  // Alphabet biased toward the grammar's structural characters so the
  // sweep reaches deep parser states, plus genuinely hostile bytes.
  const std::string alphabet =
      "abchijz.=();@>_-0123456789ep \t\n\"\\\x01\x7f";
  Rng rng(0xfa11be75u);
  std::size_t accepted = 0;
  for (int round = 0; round < 4000; ++round) {
    const std::size_t length = rng.uniform_int(std::uint64_t{64});
    std::string spec;
    spec.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      spec.push_back(
          alphabet[rng.uniform_int(std::uint64_t{alphabet.size()})]);
    }
    check_scenario_input(spec);
    std::string error;
    if (failpoint::Scenario::try_parse(spec, &error).has_value()) ++accepted;
  }
  // Mostly garbage: if the parser starts accepting everything, the
  // rejection paths above stopped being exercised.
  EXPECT_LT(accepted, 4000u);
}

TEST(ScenarioParserFuzz, MutatedValidSpecsParseOrRejectCleanly) {
  const std::vector<std::string> seeds = {
      "llm.generate=error(0.02);qec.decode=error(1.0)@pass>1",
      "analyzer.parse=corrupt(0.5)@every=3",
      "retrieval.query=delay(2.5)@p=0.1;pool.task=error",
      "oracle.reference=error(1.0)",
  };
  Rng rng(20260805);
  std::size_t still_valid = 0;
  for (const std::string& seed : seeds) {
    // Unmutated seeds are valid by construction.
    std::string error;
    ASSERT_TRUE(failpoint::Scenario::try_parse(seed, &error).has_value())
        << error;
    for (int round = 0; round < 1000; ++round) {
      const std::string spec =
          mutate(seed, 1 + static_cast<int>(rng.uniform_int(std::uint64_t{4})),
                 rng);
      check_scenario_input(spec);
      if (failpoint::Scenario::try_parse(spec, &error).has_value()) {
        ++still_valid;
      }
    }
  }
  // Single-character mutations frequently stay inside the grammar
  // (e.g. a digit change); both branches must have been exercised.
  EXPECT_GT(still_valid, 0u);
}

TEST(ScenarioParserFuzz, TrailingSeparatorVariantsRoundTrip) {
  // Trailing-';' canonicalization: for any accepted spec, appending one
  // ';' must parse to the identical scenario (and still round-trip),
  // while doubling the separator must reject with a structured reason —
  // fuzzed over mutated seeds so the property holds off the happy path.
  const std::vector<std::string> seeds = {
      "llm.generate=error(0.02);qec.decode=error(1.0)@pass>1",
      "retrieval.query=delay(2.5)@p=0.1;pool.task=error",
  };
  Rng rng(0x5e9a7a11u);
  for (const std::string& seed : seeds) {
    for (int round = 0; round < 500; ++round) {
      const std::string spec =
          round == 0
              ? seed
              : mutate(seed,
                       1 + static_cast<int>(rng.uniform_int(std::uint64_t{3})),
                       rng);
      std::string error;
      const auto bare = failpoint::Scenario::try_parse(spec, &error);
      check_scenario_input(spec + ";");
      check_scenario_input(spec + "; \t");
      // A mutated spec may itself end in the tolerated trailing ';' —
      // appending onto that builds ";;", a legitimate reject — so the
      // identity only applies when the spec's last grammar byte isn't ';'.
      const std::size_t last = spec.find_last_not_of(" \t\n\r");
      const bool already_trailed =
          last != std::string::npos && spec[last] == ';';
      if (bare.has_value() && !bare->empty() && !already_trailed) {
        const auto trailed = failpoint::Scenario::try_parse(spec + ";", &error);
        ASSERT_TRUE(trailed.has_value()) << spec << " ;: " << error;
        EXPECT_EQ(*bare, *trailed) << spec;
        // ";;" appends an interior empty clause: always a clean reject.
        EXPECT_FALSE(
            failpoint::Scenario::try_parse(spec + ";;", &error).has_value())
            << spec;
        EXPECT_NE(error.find("empty clause"), std::string::npos) << error;
      }
    }
  }
}

}  // namespace
}  // namespace qcgen
